//! Microcode generators for the IPv6 forwarding fast path.
//!
//! One generator per routing-table organisation (the design variable of the
//! paper's Table 1):
//!
//! * [`sequential_program`] — scans the in-memory table entry by entry,
//!   longest prefix first, using Counter/MMU/Matcher chains; `unroll`
//!   parallel lanes use distinct *virtual* FU instances, so the same code
//!   speeds up on the `3bus/3CNT,3CMP,3M` configuration and still runs
//!   correctly (merely serialised) on `1BUS/1FU`;
//! * [`tree_program`] — descends the balanced BST with a predecessor
//!   search (remember the node and go right when its key ≤ destination);
//! * [`cam_program`] — hands the whole lookup to the Routing Table Unit
//!   (CAM + SRAM) and waits out its fixed search latency.
//!
//! All three share the same per-datagram envelope: pop a pending pointer
//! from the iPPU, validate the version nibble, check and decrement the hop
//! limit (writing it back to memory), load the destination address, and —
//! after the lookup — hand the pointer to the oPPU with the resolved output
//! interface.
//!
//! **Folding discipline.**  Virtual FU instances are folded onto physical
//! ones by the scheduler (`virtual mod physical`).  Generated code
//! therefore keeps every virtual instance's def-use chain *contiguous in
//! program order*: the scheduler's hazard edges then serialise chains that
//! share a physical unit and overlap chains that do not.  Never interleave
//! two chains of the same FU kind.
//!
//! Register map (general-purpose registers):
//!
//! | reg | use |
//! |---|---|
//! | r0  | datagram base pointer |
//! | r2  | header word 1 (payload len / next header / hop limit) |
//! | r4–r7 | destination address words 0–3 |
//! | r3  | full-match accumulator (sequential verify pass) |
//! | r8  | current node (tree) / shifting-word register (trie uses r3) |
//! | r9  | scan block counter (sequential) / per-word level counter (trie) |
//! | r10 | match candidate (entry/node address) |
//! | r11 | resolved output interface |
//! | r12–r14 | per-lane entry pointers (sequential) |

use taco_isa::{CodeBuilder, FuKind, MoveSeq};

use crate::layout::{MISS_IFACE, NULL_PTR, SEQ_ENTRY_WORDS, TABLE_BASE};

/// Options shared by the three generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MicrocodeOptions {
    /// Parallel scan lanes for the sequential table (1..=3).  Three lanes
    /// use three virtual Matcher/Counter/Comparator instances — the paper's
    /// third configuration.
    pub unroll: u8,
    /// Which 32-bit address word (0..=3) the sequential screening pass
    /// compares.  Real tables cluster under a common word-0 prefix (e.g.
    /// everything under `2001::/16`), so the discriminating word is usually
    /// word 1; [`choose_screen_word`] picks it from the table.
    pub screen_word: u8,
    /// If `true` the program halts when the iPPU queue is empty (batch
    /// measurement mode); if `false` it spins waiting for more traffic
    /// (live router mode).
    pub halt_when_idle: bool,
}

impl Default for MicrocodeOptions {
    fn default() -> Self {
        MicrocodeOptions { unroll: 3, screen_word: 1, halt_when_idle: true }
    }
}

/// Emits the shared prologue: wait/pop a datagram, validate, decrement hop
/// limit, load the destination into r4–r7.
///
/// Control flow defined here: `top` (per-datagram entry), `drop`
/// (validation failures and lookup misses re-enter `top`), `end` (halt).
fn envelope_prologue(b: &mut CodeBuilder, opts: &MicrocodeOptions) {
    let ippu = b.fu(FuKind::Ippu, 0);
    let mmu = b.fu(FuKind::Mmu, 0);
    let m = b.alloc(FuKind::Matcher);
    let c = b.alloc(FuKind::Counter);

    b.label("top");
    if opts.halt_when_idle {
        b.jump_unless(ippu.guard("pending"), "end");
    } else {
        // Spin until a line card delivers something.
        b.jump_unless(ippu.guard("pending"), "top");
    }
    b.mv(0u32, ippu.port("tpop"));
    b.mv(ippu.port("ptr"), b.reg(0));

    // Word 0: version nibble must be 6.
    b.mv(b.reg(0), mmu.port("addr"));
    b.mv(0u32, mmu.port("tread"));
    b.mv(0xf000_0000u32, m.port("mask"));
    b.mv(0x6000_0000u32, m.port("refv"));
    b.mv(mmu.port("r"), m.port("t"));
    b.jump_unless(m.guard("match"), "drop");

    // Word 1: hop limit in the low byte.  RFC 2460: discard (and let the
    // slow path send *time exceeded*) unless the hop limit survives the
    // decrement, i.e. unless it is at least 2 on arrival.
    b.mv(b.reg(0), c.port("tset"));
    b.mv(1u32, c.port("tadd"));
    b.mv(c.port("r"), mmu.port("addr"));
    b.mv(0u32, mmu.port("tread"));
    b.mv(mmu.port("r"), b.reg(2));
    let mk = b.alloc(FuKind::Masker);
    let ph = b.alloc(FuKind::Comparator);
    b.mv(0xffff_ff00u32, mk.port("mask"));
    b.mv(0u32, mk.port("value"));
    b.mv(b.reg(2), mk.port("t")); // r = word1 & 0xff = hop limit
    b.mv(2u32, ph.port("refv"));
    b.mv(mk.port("r"), ph.port("t"));
    b.jump_if(ph.guard("lt"), "drop"); // hop limit exhausted

    // Decrement the hop limit and write the word back (the hop limit is
    // the low byte, and it is non-zero here, so a plain decrement of the
    // word is exact).
    let c2 = b.alloc(FuKind::Counter);
    b.mv(b.reg(2), c2.port("tset"));
    b.mv(0u32, c2.port("tdec"));
    // mmu.addr still holds r0+1 from the read above.
    b.mv(c2.port("r"), mmu.port("twrite"));

    // Destination address words into r4..r7 (header bytes 24..40 = words
    // 6..10).
    let ca = b.alloc(FuKind::Counter);
    b.mv(b.reg(0), ca.port("tset"));
    b.mv(6u32, ca.port("tadd"));
    for w in 0..4u8 {
        b.mv(ca.port("r"), mmu.port("addr"));
        b.mv(0u32, mmu.port("tread"));
        b.mv(mmu.port("r"), b.reg(4 + w));
        if w < 3 {
            b.mv(0u32, ca.port("tinc"));
        }
    }

    // Multicast destinations (ff00::/8) never take the unicast fast path:
    // control groups like ff02::9 belong to the slow path, everything else
    // is dropped rather than unicast-forwarded.
    b.mv(0xff00_0000u32, m.port("mask"));
    b.mv(0xff00_0000u32, m.port("refv"));
    b.mv(b.reg(4), m.port("t"));
    b.jump_if(m.guard("match"), "drop");
}

/// Emits the shared epilogue: `found` (r11 = interface, forward), `drop`
/// and `end` labels.
fn envelope_epilogue(b: &mut CodeBuilder) {
    let oppu = b.fu(FuKind::Oppu, 0);
    b.label("found");
    b.mv(b.reg(11), oppu.port("iface"));
    b.mv(b.reg(0), oppu.port("t"));
    b.jump("top");
    b.label("drop");
    b.jump("top");
    b.label("end");
}

/// Generates the forwarding program for a **sequential** routing table of
/// `entries` entries laid out at [`TABLE_BASE`] (see
/// [`serialize_sequential`](crate::layout::serialize_sequential)).
///
/// The scan is two-pass, the way hand-written table-scan microcode is
/// structured:
///
/// 1. **screen** — blocks of `opts.unroll` lanes compare only the *first*
///    address word of each entry under its mask (two memory reads per
///    entry).  Lane chains use distinct virtual Matcher/Counter instances,
///    so the `3bus/3CNT,3CMP,3M` configuration overlaps three entries per
///    block while `1BUS/1FU` degrades gracefully to a serial scan.  Within
///    a block, lanes are emitted in *reverse* entry order so the earliest
///    (longest-prefix) word-0 hit wins the candidate register.
/// 2. **verify** — from the first word-0 hit onward, entries are checked
///    against all four address words; the first full match resolves the
///    lookup (sound because a full match implies a word-0 match, so the
///    true match can never precede the first screening hit).
///
/// The table image must be padded to a multiple of `unroll` entries with
/// never-matching sentinels — [`pad_sequential_image`] does that.
///
/// # Panics
///
/// Panics if `opts.unroll` is not in `1..=3` (the register map supports at
/// most three lanes) or `opts.screen_word` is not in `0..=3`.
pub fn sequential_program(entries: usize, opts: &MicrocodeOptions) -> MoveSeq {
    assert!((1..=3).contains(&opts.unroll), "unroll must be 1..=3");
    assert!(opts.screen_word <= 3, "screen word must be 0..=3");
    let screen_off = 2 * u32::from(opts.screen_word); // word w lives at +2w
    let unroll = usize::from(opts.unroll);
    let blocks = entries.div_ceil(unroll).max(1) as u32;
    let stride = SEQ_ENTRY_WORDS;
    let table_limit = TABLE_BASE + blocks * opts.unroll as u32 * stride;

    let mut b = CodeBuilder::new();
    envelope_prologue(&mut b, opts);

    let mmu = b.fu(FuKind::Mmu, 0);
    // Per-lane virtual units (fold onto physical instances as available).
    // Each lane gets its own virtual MMU: on a multi-ported memory
    // (`MachineConfig::with_fu_count(FuKind::Mmu, n)`) the lanes' reads
    // overlap; on the paper's single-ported memory they fold and serialise.
    let lanes: Vec<_> = (0..unroll)
        .map(|_| (b.alloc(FuKind::Matcher), b.alloc(FuKind::Counter), b.alloc(FuKind::Mmu)))
        .collect();
    let ctrl_cmp = b.alloc(FuKind::Comparator);
    let ctrl_cnt = b.alloc(FuKind::Counter);
    let lane_reg = |k: usize| 12 + k as u8; // r12..r14

    // Lane pointers and block counter.
    for k in 0..unroll {
        b.mv(TABLE_BASE + (k as u32) * stride, b.reg(lane_reg(k)));
    }
    b.mv(0u32, b.reg(9));

    // ---- pass 1: screen on address word 0 -----------------------------
    b.label("scan");
    b.mv(NULL_PTR, b.reg(10)); // candidate for this block

    // Reverse lane order: lane 0 (earliest entry = longest prefix) writes
    // the candidate register last and therefore wins ties.
    for k in (0..unroll).rev() {
        let (m, c, lane_mmu) = lanes[k];
        b.mv(b.reg(lane_reg(k)), c.port("tset"));
        if screen_off > 0 {
            b.mv(screen_off, c.port("tadd"));
        }
        b.mv(c.port("r"), lane_mmu.port("addr")); // mask word w
        b.mv(0u32, lane_mmu.port("tread"));
        b.mv(lane_mmu.port("r"), m.port("mask"));
        b.mv(0u32, c.port("tinc"));
        b.mv(c.port("r"), lane_mmu.port("addr")); // prefix word w
        b.mv(0u32, lane_mmu.port("tread"));
        b.mv(lane_mmu.port("r"), m.port("refv"));
        b.mv(b.reg(4 + opts.screen_word), m.port("t")); // destination word w
        b.mv_if(m.guard("match"), b.reg(lane_reg(k)), b.reg(10));
        // Advance the lane pointer: c currently holds base + 2w + 1.
        b.mv(stride * opts.unroll as u32 - screen_off - 1, c.port("tadd"));
        b.mv(c.port("r"), b.reg(lane_reg(k)));
    }

    // Any screening hit? → verify from there.
    b.mv(NULL_PTR, ctrl_cmp.port("refv"));
    b.mv(b.reg(10), ctrl_cmp.port("t"));
    b.jump_unless(ctrl_cmp.guard("eq"), "verify");

    // Next block or give up.
    b.mv(b.reg(9), ctrl_cnt.port("tset"));
    b.mv(0u32, ctrl_cnt.port("tinc"));
    b.mv(ctrl_cnt.port("r"), b.reg(9));
    b.mv(blocks, ctrl_cmp.port("refv"));
    b.mv(ctrl_cnt.port("r"), ctrl_cmp.port("t"));
    b.jump_unless(ctrl_cmp.guard("eq"), "scan");
    b.jump("drop"); // scanned everything: no route

    // ---- pass 2: verify all four words from the candidate onward ------
    let mf = b.alloc(FuKind::Matcher);
    let cw = b.alloc(FuKind::Counter);
    b.label("verify");
    // Past the end of the table? No entry matched in full.
    b.mv(table_limit, ctrl_cmp.port("refv"));
    b.mv(b.reg(10), ctrl_cmp.port("t"));
    b.jump_unless(ctrl_cmp.guard("lt"), "drop");
    b.mv(1u32, b.reg(3)); // match accumulator
    b.mv(b.reg(10), cw.port("tset"));
    for w in 0..4u8 {
        b.mv(cw.port("r"), mmu.port("addr")); // mask word
        b.mv(0u32, mmu.port("tread"));
        b.mv(mmu.port("r"), mf.port("mask"));
        b.mv(0u32, cw.port("tinc"));
        b.mv(cw.port("r"), mmu.port("addr")); // prefix word
        b.mv(0u32, mmu.port("tread"));
        b.mv(mmu.port("r"), mf.port("refv"));
        b.mv(0u32, cw.port("tinc"));
        b.mv(b.reg(4 + w), mf.port("t"));
        b.mv_unless(mf.guard("match"), 0u32, b.reg(3));
    }
    b.mv(1u32, ctrl_cmp.port("refv"));
    b.mv(b.reg(3), ctrl_cmp.port("t"));
    b.jump_if(ctrl_cmp.guard("eq"), "resolve");
    // Move to the next entry: cw holds base+8.
    b.mv(stride - 8, cw.port("tadd"));
    b.mv(cw.port("r"), b.reg(10));
    b.jump("verify");

    // Resolve: read the entry's interface word (base + 8).
    b.label("resolve");
    let cr = b.alloc(FuKind::Counter);
    b.mv(b.reg(10), cr.port("tset"));
    b.mv(8u32, cr.port("tadd"));
    b.mv(cr.port("r"), mmu.port("addr"));
    b.mv(0u32, mmu.port("tread"));
    b.mv(mmu.port("r"), b.reg(11));
    b.mv(MISS_IFACE, ctrl_cmp.port("refv"));
    b.mv(b.reg(11), ctrl_cmp.port("t"));
    b.jump_if(ctrl_cmp.guard("eq"), "drop");
    b.jump("found");

    envelope_epilogue(&mut b);
    b.finish()
}

/// Picks the screening word for [`sequential_program`]: the address word
/// with the most distinct `(mask, prefix)` pairs across the table's
/// entries, i.e. the one most likely to reject a non-matching entry.
pub fn choose_screen_word(table: &taco_routing::SequentialTable) -> u8 {
    let mut best = (0u8, 0usize);
    for w in 0..4u8 {
        let mut values: Vec<(u32, u32)> = table
            .entries()
            .iter()
            .map(|r| {
                let mask = r.prefix().mask_words()[usize::from(w)];
                let pfx = r.prefix().addr().to_words()[usize::from(w)];
                (mask, pfx)
            })
            .collect();
        values.sort_unstable();
        values.dedup();
        if values.len() > best.1 {
            best = (w, values.len());
        }
    }
    best.0
}

/// Pads a sequential table image to a multiple of `unroll` entries with
/// never-matching sentinel entries (full mask, all-ones prefix,
/// [`MISS_IFACE`]); the all-ones destination is the all-nodes multicast
/// group, which a router never looks up.
pub fn pad_sequential_image(image: &mut Vec<u32>, unroll: u8) {
    let stride = SEQ_ENTRY_WORDS as usize;
    let entries = image.len() / stride;
    let target = entries.div_ceil(usize::from(unroll)).max(1) * usize::from(unroll);
    for _ in entries..target {
        for _ in 0..4 {
            image.push(0xffff_ffff); // mask
            image.push(0xffff_ffff); // prefix
        }
        image.push(MISS_IFACE);
        image.push(NULL_PTR);
        image.push(0);
        image.push(0);
    }
}

/// Generates the forwarding program for a **balanced-tree** routing table
/// serialised by [`serialize_tree`](crate::layout::serialize_tree).
///
/// The descent is a genuine loop (the paper's logarithmic search): at each
/// node the 128-bit key is compared word by word with early exit; keys
/// smaller than or equal to the destination make the node the candidate
/// and send the walk right, larger keys send it left; a null pointer ends
/// the walk and the candidate's interface word resolves the lookup.
pub fn tree_program(opts: &MicrocodeOptions) -> MoveSeq {
    let mut b = CodeBuilder::new();
    envelope_prologue(&mut b, opts);

    let mmu = b.fu(FuKind::Mmu, 0);
    let p_null = b.alloc(FuKind::Comparator);
    let p_key = b.alloc(FuKind::Comparator);
    let c_walk = b.alloc(FuKind::Counter);
    let c_ptr = b.alloc(FuKind::Counter);

    // r8 = current node, r10 = candidate node.
    b.mv(TABLE_BASE, b.reg(8));
    b.mv(NULL_PTR, b.reg(10));

    b.label("walk");
    b.mv(NULL_PTR, p_null.port("refv"));
    b.mv(b.reg(8), p_null.port("t"));
    b.jump_if(p_null.guard("eq"), "resolve");

    // Compare key words 0..3 against the destination, early-exiting on the
    // first inequality.
    b.mv(b.reg(8), c_walk.port("tset"));
    for w in 0..4u8 {
        b.mv(c_walk.port("r"), mmu.port("addr"));
        b.mv(0u32, mmu.port("tread"));
        b.mv(b.reg(4 + w), p_key.port("refv"));
        b.mv(mmu.port("r"), p_key.port("t"));
        b.jump_if(p_key.guard("lt"), "go_right"); // key < dst
        b.jump_if(p_key.guard("gt"), "go_left"); // key > dst
        if w < 3 {
            b.mv(0u32, c_walk.port("tinc"));
        }
    }
    // Fell through: key == dst exactly; it is a valid predecessor.

    b.label("go_right");
    b.mv(b.reg(8), b.reg(10)); // candidate = this node
    b.mv(b.reg(8), c_ptr.port("tset"));
    b.mv(5u32, c_ptr.port("tadd"));
    b.mv(c_ptr.port("r"), mmu.port("addr"));
    b.mv(0u32, mmu.port("tread"));
    b.mv(mmu.port("r"), b.reg(8));
    b.jump("walk");

    b.label("go_left");
    b.mv(b.reg(8), c_ptr.port("tset"));
    b.mv(4u32, c_ptr.port("tadd"));
    b.mv(c_ptr.port("r"), mmu.port("addr"));
    b.mv(0u32, mmu.port("tread"));
    b.mv(mmu.port("r"), b.reg(8));
    b.jump("walk");

    // Candidate's interface word (node + 6) answers the lookup.
    b.label("resolve");
    b.mv(NULL_PTR, p_null.port("refv"));
    b.mv(b.reg(10), p_null.port("t"));
    b.jump_if(p_null.guard("eq"), "drop"); // empty tree
    b.mv(b.reg(10), c_ptr.port("tset"));
    b.mv(6u32, c_ptr.port("tadd"));
    b.mv(c_ptr.port("r"), mmu.port("addr"));
    b.mv(0u32, mmu.port("tread"));
    b.mv(mmu.port("r"), b.reg(11));
    b.mv(MISS_IFACE, p_null.port("refv"));
    b.mv(b.reg(11), p_null.port("t"));
    b.jump_if(p_null.guard("eq"), "drop");
    b.jump("found");

    envelope_epilogue(&mut b);
    b.finish()
}

/// Generates the forwarding program for a **unibit-trie** routing table
/// serialised by [`serialize_trie`](crate::layout::serialize_trie) — the
/// classic "software-based algorithm" alternative the paper's related work
/// discusses.
///
/// The walk consumes one destination-address bit per node: the current
/// address word shifts left through the Shifter while the Matcher tests its
/// most-significant bit to pick the left or right child; every node
/// carrying a route becomes the candidate.  Four unrolled sections walk the
/// four address words, each with a 32-level counted loop.
///
/// The probe count is bounded by the *longest stored prefix*, not the table
/// size — flat like the CAM, but at tens of cycles per bit, which is the
/// quantitative reason unibit tries that served IPv4 become painful at
/// IPv6's 128-bit keys (the asymmetry behind the paper's CAM discussion).
pub fn trie_program(opts: &MicrocodeOptions) -> MoveSeq {
    let mut b = CodeBuilder::new();
    envelope_prologue(&mut b, opts);

    let mmu = b.fu(FuKind::Mmu, 0);
    let sh = b.fu(FuKind::Shifter, 0);
    let m_bit = b.alloc(FuKind::Matcher);
    let p_null = b.alloc(FuKind::Comparator);
    let p_miss = b.alloc(FuKind::Comparator);
    let c_iface = b.alloc(FuKind::Counter);
    let c_child = b.alloc(FuKind::Counter);
    let c_level = b.alloc(FuKind::Counter);

    // r8 = current node, r10 = candidate node, r3 = shifting address word,
    // r9 = level counter within the current word.
    b.mv(TABLE_BASE, b.reg(8));
    b.mv(NULL_PTR, b.reg(10));
    b.mv(1u32, sh.port("amount")); // the only shifter user: set once

    for w in 0..4u8 {
        let loop_label = format!("trie_w{w}");
        b.mv(b.reg(4 + w), b.reg(3));
        b.mv(0u32, b.reg(9));
        b.label(loop_label.clone());

        // Candidate: does this node carry a route? (iface word at +2)
        b.mv(b.reg(8), c_iface.port("tset"));
        b.mv(2u32, c_iface.port("tadd"));
        b.mv(c_iface.port("r"), mmu.port("addr"));
        b.mv(0u32, mmu.port("tread"));
        b.mv(MISS_IFACE, p_miss.port("refv"));
        b.mv(mmu.port("r"), p_miss.port("t"));
        b.mv_unless(p_miss.guard("eq"), b.reg(8), b.reg(10));

        // Child select on the MSB of the shifting word.
        b.mv(0x8000_0000u32, m_bit.port("mask"));
        b.mv(0x8000_0000u32, m_bit.port("refv"));
        b.mv(b.reg(3), m_bit.port("t"));
        b.mv(b.reg(8), c_child.port("tset"));
        b.mv_if(m_bit.guard("match"), 1u32, c_child.port("tinc"));
        b.mv(c_child.port("r"), mmu.port("addr"));
        b.mv(0u32, mmu.port("tread"));
        b.mv(mmu.port("r"), b.reg(8));

        // Null child ends the walk.
        b.mv(NULL_PTR, p_null.port("refv"));
        b.mv(b.reg(8), p_null.port("t"));
        b.jump_if(p_null.guard("eq"), "trie_resolve");

        // Shift to the next bit; after 32 of them, the next word.
        b.mv(b.reg(3), sh.port("tshl"));
        b.mv(sh.port("r"), b.reg(3));
        b.mv(b.reg(9), c_level.port("tset"));
        b.mv(32u32, c_level.port("stop"));
        b.mv(0u32, c_level.port("tinc"));
        b.mv(c_level.port("r"), b.reg(9));
        b.jump_unless(c_level.guard("done"), loop_label);
    }

    // On bit exhaustion (a /128 route) the final node was entered but not
    // yet candidate-checked; do it now — unless the walk ended on a null.
    b.label("trie_resolve");
    b.mv(NULL_PTR, p_null.port("refv"));
    b.mv(b.reg(8), p_null.port("t"));
    b.jump_if(p_null.guard("eq"), "trie_final");
    b.mv(b.reg(8), c_iface.port("tset"));
    b.mv(2u32, c_iface.port("tadd"));
    b.mv(c_iface.port("r"), mmu.port("addr"));
    b.mv(0u32, mmu.port("tread"));
    b.mv(MISS_IFACE, p_miss.port("refv"));
    b.mv(mmu.port("r"), p_miss.port("t"));
    b.mv_unless(p_miss.guard("eq"), b.reg(8), b.reg(10));

    b.label("trie_final");
    b.mv(NULL_PTR, p_null.port("refv"));
    b.mv(b.reg(10), p_null.port("t"));
    b.jump_if(p_null.guard("eq"), "drop");
    b.mv(b.reg(10), c_iface.port("tset"));
    b.mv(2u32, c_iface.port("tadd"));
    b.mv(c_iface.port("r"), mmu.port("addr"));
    b.mv(0u32, mmu.port("tread"));
    b.mv(mmu.port("r"), b.reg(11));
    b.jump("found");

    envelope_epilogue(&mut b);
    b.finish()
}

/// Generates the forwarding program for a **PATRICIA** routing table
/// serialised by [`serialize_patricia`](crate::layout::serialize_patricia)
/// — path-compressed per Click's `BSDIP6Lookup` ("fast database updates,
/// O(W) lookups").
///
/// Each iteration handles one node: verify the node's *entire* masked
/// prefix against the destination (four interleaved mask/prefix pairs —
/// the compressed bits are not implied by the descent path, so a mismatch
/// ends the walk), remember the node as the candidate when it carries a
/// route, then fetch the node's branch-bit descriptor
/// (`branch_off`/`branch_mask`) to pick the left or right child.  A null
/// child or a verify failure resolves to the deepest candidate.  The walk
/// visits one node per *branching* bit instead of one per prefix bit,
/// which is what lets internet-size tables keep O(W) probes with a
/// fraction of the unibit trie's nodes.
pub fn patricia_program(opts: &MicrocodeOptions) -> MoveSeq {
    let mut b = CodeBuilder::new();
    envelope_prologue(&mut b, opts);

    let mmu = b.fu(FuKind::Mmu, 0);
    let mf = b.alloc(FuKind::Matcher); // prefix-verify matcher
    let m_bit = b.alloc(FuKind::Matcher); // branch-bit matcher
    let p_null = b.alloc(FuKind::Comparator);
    let p_miss = b.alloc(FuKind::Comparator);
    let p_ok = b.alloc(FuKind::Comparator);
    // One counter walks the node's word fields, the datagram-relative
    // branch word *and* the child select: the chains must stay strictly
    // sequential because every virtual counter folds onto the single
    // physical instance of the 1-FU machines.
    let c_word = b.alloc(FuKind::Counter);

    // r8 = current node, r10 = candidate node, r3 = verify accumulator,
    // r9 = branch-descriptor scratch.
    b.mv(TABLE_BASE, b.reg(8));
    b.mv(NULL_PTR, b.reg(10));

    b.label("pat_walk");
    // ---- verify the whole node prefix (mask/prefix pairs at +6..+14) ---
    b.mv(1u32, b.reg(3));
    b.mv(b.reg(8), c_word.port("tset"));
    b.mv(6u32, c_word.port("tadd"));
    for w in 0..4u8 {
        b.mv(c_word.port("r"), mmu.port("addr")); // mask word
        b.mv(0u32, mmu.port("tread"));
        b.mv(mmu.port("r"), mf.port("mask"));
        b.mv(0u32, c_word.port("tinc"));
        b.mv(c_word.port("r"), mmu.port("addr")); // prefix word
        b.mv(0u32, mmu.port("tread"));
        b.mv(mmu.port("r"), mf.port("refv"));
        if w < 3 {
            b.mv(0u32, c_word.port("tinc"));
        }
        b.mv(b.reg(4 + w), mf.port("t"));
        b.mv_unless(mf.guard("match"), 0u32, b.reg(3));
    }
    b.mv(1u32, p_ok.port("refv"));
    b.mv(b.reg(3), p_ok.port("t"));
    // Skipped bits disagreed: no descendant can match either — resolve.
    b.jump_unless(p_ok.guard("eq"), "pat_resolve");

    // ---- candidate: does this node carry a route? (iface word at +2) ---
    b.mv(b.reg(8), c_word.port("tset"));
    b.mv(2u32, c_word.port("tadd"));
    b.mv(c_word.port("r"), mmu.port("addr"));
    b.mv(0u32, mmu.port("tread"));
    b.mv(MISS_IFACE, p_miss.port("refv"));
    b.mv(mmu.port("r"), p_miss.port("t"));
    b.mv_unless(p_miss.guard("eq"), b.reg(8), b.reg(10));

    // ---- branch bit: dgram word at +4's offset, under +5's mask --------
    b.mv(2u32, c_word.port("tadd")); // +2 → +4: branch_off
    b.mv(c_word.port("r"), mmu.port("addr"));
    b.mv(0u32, mmu.port("tread"));
    b.mv(mmu.port("r"), b.reg(9)); // r9 = branch_off, for after +5
    b.mv(0u32, c_word.port("tinc")); // +5: branch_mask
    b.mv(c_word.port("r"), mmu.port("addr"));
    b.mv(0u32, mmu.port("tread"));
    b.mv(mmu.port("r"), m_bit.port("mask"));
    // Bit set ⇔ (word & mask) != 0; test against zero so the /128
    // never-branch mask reads as "bit clear" → left child (NULL).
    b.mv(0u32, m_bit.port("refv"));
    b.mv(b.reg(9), c_word.port("tset")); // counter := branch_off
    b.mv(b.reg(0), c_word.port("tadd")); // + datagram base
    b.mv(c_word.port("r"), mmu.port("addr")); // destination word
    b.mv(0u32, mmu.port("tread"));
    b.mv(mmu.port("r"), m_bit.port("t"));

    // ---- child select: left at +0, right at +1 -------------------------
    b.mv(b.reg(8), c_word.port("tset"));
    b.mv_unless(m_bit.guard("match"), 1u32, c_word.port("tinc"));
    b.mv(c_word.port("r"), mmu.port("addr"));
    b.mv(0u32, mmu.port("tread"));
    b.mv(mmu.port("r"), b.reg(8));
    b.mv(NULL_PTR, p_null.port("refv"));
    b.mv(b.reg(8), p_null.port("t"));
    b.jump_unless(p_null.guard("eq"), "pat_walk");

    // ---- resolve: the deepest verified candidate answers ---------------
    b.label("pat_resolve");
    b.mv(NULL_PTR, p_null.port("refv"));
    b.mv(b.reg(10), p_null.port("t"));
    b.jump_if(p_null.guard("eq"), "drop");
    b.mv(b.reg(10), c_word.port("tset"));
    b.mv(2u32, c_word.port("tadd"));
    b.mv(c_word.port("r"), mmu.port("addr"));
    b.mv(0u32, mmu.port("tread"));
    b.mv(mmu.port("r"), b.reg(11));
    b.jump("found");

    envelope_epilogue(&mut b);
    b.finish()
}

/// Generates the forwarding program for a **CAM-backed** Routing Table
/// Unit: the four destination words go to the RTU's key registers, the
/// trigger starts the external search, and the result read stalls the
/// processor for the CAM's fixed latency — "a major boost in router
/// performance in detriment of high implementation cost".
pub fn cam_program(opts: &MicrocodeOptions) -> MoveSeq {
    let mut b = CodeBuilder::new();
    envelope_prologue(&mut b, opts);

    let rtu = b.fu(FuKind::Rtu, 0);

    b.mv(b.reg(4), rtu.port("k0"));
    b.mv(b.reg(5), rtu.port("k1"));
    b.mv(b.reg(6), rtu.port("k2"));
    b.mv(b.reg(7), rtu.port("t"));
    b.jump_unless(rtu.guard("hit"), "drop"); // stalls until the CAM answers
    b.mv(rtu.port("iface"), b.reg(11));
    b.jump("found");

    envelope_epilogue(&mut b);
    b.finish()
}

/// Generates a standalone slow-path routine: the RFC 1071 Internet
/// checksum of `words` consecutive 32-bit words starting at word address
/// `start`, left in register r0.
///
/// This is the TACO `Checksum` functional unit doing the job it exists
/// for — the UDP/ICMPv6 sums of the router's control plane.  The fast
/// path never needs it (IPv6 removed the header checksum, as the paper's
/// FU inventory reflects), so the routine is exercised by the slow-path
/// tests and the `quickstart` example rather than by Table 1.
pub fn checksum_program(start: u32, words: u32) -> MoveSeq {
    let mut b = CodeBuilder::new();
    let mmu = b.fu(FuKind::Mmu, 0);
    let cs = b.fu(FuKind::Checksum, 0);
    let c = b.alloc(FuKind::Counter);
    let p = b.alloc(FuKind::Comparator);

    b.mv(0u32, cs.port("tclr"));
    if words > 0 {
        b.mv(start, b.reg(1));
        b.label("sum");
        b.mv(b.reg(1), mmu.port("addr"));
        b.mv(0u32, mmu.port("tread"));
        b.mv(mmu.port("r"), cs.port("tadd"));
        b.mv(b.reg(1), c.port("tset"));
        b.mv(0u32, c.port("tinc"));
        b.mv(c.port("r"), b.reg(1));
        b.mv(start + words, p.port("refv"));
        b.mv(b.reg(1), p.port("t"));
        b.jump_unless(p.guard("eq"), "sum");
    }
    b.mv(cs.port("r"), b.reg(0));
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_isa::{schedule, MachineConfig, Program};

    fn scheduled(seq: &MoveSeq, config: &MachineConfig) -> Program {
        let mut prog = schedule(seq, config);
        prog.resolve_labels().expect("all labels defined");
        prog
    }

    #[test]
    fn all_programs_schedule_on_all_paper_configs() {
        let opts = MicrocodeOptions::default();
        let seqs = [
            sequential_program(100, &opts),
            tree_program(&opts),
            cam_program(&opts),
            trie_program(&opts),
            patricia_program(&opts),
        ];
        for config in [
            MachineConfig::one_bus_one_fu(),
            MachineConfig::three_bus_one_fu(),
            MachineConfig::three_bus_three_fu(),
        ] {
            for s in &seqs {
                let p = scheduled(s, &config);
                assert!(!p.instructions.is_empty());
            }
        }
    }

    #[test]
    fn wider_machines_schedule_shorter_static_code() {
        let opts = MicrocodeOptions::default();
        let seq = sequential_program(30, &opts);
        let one = scheduled(&seq, &MachineConfig::one_bus_one_fu()).instructions.len();
        let three = scheduled(&seq, &MachineConfig::three_bus_one_fu()).instructions.len();
        assert!(three < one, "3-bus static length {three} !< 1-bus {one}");
    }

    #[test]
    fn unroll_bounds_enforced() {
        let bad = MicrocodeOptions { unroll: 4, ..MicrocodeOptions::default() };
        let result = std::panic::catch_unwind(|| sequential_program(10, &bad));
        assert!(result.is_err());
    }

    #[test]
    fn padding_rounds_up_to_unroll() {
        let stride = SEQ_ENTRY_WORDS as usize;
        let mut img = vec![0u32; 7 * stride];
        pad_sequential_image(&mut img, 3);
        assert_eq!(img.len(), 9 * stride);
        // Sentinels never match and resolve to a miss.
        assert_eq!(img[7 * stride], 0xffff_ffff);
        assert_eq!(img[7 * stride + 8], MISS_IFACE);
        // Already-aligned images are untouched.
        let mut aligned = vec![0u32; 6 * stride];
        pad_sequential_image(&mut aligned, 3);
        assert_eq!(aligned.len(), 6 * stride);
        // An empty table still needs one block's worth of sentinels.
        let mut empty = Vec::new();
        pad_sequential_image(&mut empty, 3);
        assert_eq!(empty.len(), 3 * stride);
    }

    #[test]
    fn batch_mode_program_has_end_label_past_code() {
        let seq = sequential_program(3, &MicrocodeOptions::default());
        let prog = scheduled(&seq, &MachineConfig::three_bus_one_fu());
        assert_eq!(prog.labels["end"], prog.instructions.len());
    }

    #[test]
    fn checksum_program_matches_software_checksum() {
        use taco_sim::Processor;
        for (label, data) in [
            ("empty", vec![]),
            ("one", vec![0xdead_beefu32]),
            ("rfc_example", vec![0x0001_f203, 0xf4f5_f6f7]),
            ("carry_heavy", vec![0xffff_ffff; 7]),
            ("mixed", vec![0x1234_5678, 0, 0xffff_0000, 0x0000_ffff, 42]),
        ] {
            let seq = checksum_program(0x40, data.len() as u32);
            let mut prog = schedule(&seq, &MachineConfig::three_bus_one_fu());
            prog.resolve_labels().unwrap();
            let mut cpu = Processor::new(MachineConfig::three_bus_one_fu(), prog).unwrap();
            cpu.memory_mut().load(0x40, &data).unwrap();
            cpu.run(10_000).unwrap();

            let mut reference = taco_ipv6::checksum::Checksum::new();
            for w in &data {
                reference.add_u32(*w);
            }
            assert_eq!(cpu.reg(0), u32::from(reference.finish()), "{label}");
        }
    }

    #[test]
    fn live_mode_spins_instead_of_halting() {
        let opts = MicrocodeOptions { halt_when_idle: false, ..MicrocodeOptions::default() };
        let seq = cam_program(&opts);
        // The spin form jumps back to "top" rather than referencing "end"
        // from the wait; "end" is still defined by the epilogue.
        let prog = scheduled(&seq, &MachineConfig::three_bus_one_fu());
        assert!(prog.labels.contains_key("top"));
    }
}
