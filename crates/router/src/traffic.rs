//! Synthetic workload generation.
//!
//! The paper evaluated against the 10 Gbps line-rate requirement with a
//! ≤100-entry routing table; real traces are not available, so this module
//! generates the equivalent synthetic inputs: random-but-reproducible
//! routing tables, destination addresses that hit or miss them, forwarding
//! datagrams, and RIPng control traffic — everything the routers (both
//! cycle-accurate and behavioural) consume.

use taco_ipv6::ripng::{Command, RipngPacket, RouteEntry};
use taco_ipv6::{Datagram, Ipv6Address, Ipv6Prefix, NextHeader};
use taco_routing::{PortId, Route};

use crate::rng::SplitMix64;

/// A deterministic workload generator (seeded in-tree [`SplitMix64`]).
#[derive(Debug, Clone)]
pub struct TrafficGen {
    rng: SplitMix64,
    ports: u16,
}

impl TrafficGen {
    /// Creates a generator with `ports` router ports and a fixed `seed`.
    pub fn new(seed: u64, ports: u16) -> Self {
        TrafficGen { rng: SplitMix64::new(seed), ports: ports.max(1) }
    }

    /// A random global-unicast prefix with length in `16..=64` (multiples
    /// of 4, like real allocations).
    pub fn prefix(&mut self) -> Ipv6Prefix {
        let len = (self.rng.range_inclusive(4, 16) * 4) as u8;
        let mut octets = [0u8; 16];
        self.rng.fill_bytes(&mut octets);
        octets[0] = 0x20 | (octets[0] & 0x0f); // 2000::/4 global unicast
        Ipv6Prefix::new(Ipv6Address::new(octets), len).expect("len <= 64")
    }

    /// A random routing table of `n` distinct prefixes (plus an optional
    /// default route), with next hops on random ports.
    pub fn table(&mut self, n: usize, with_default: bool) -> Vec<Route> {
        let mut routes = Vec::with_capacity(n + 1);
        let mut seen = std::collections::BTreeSet::new();
        while routes.len() < n {
            let p = self.prefix();
            if !seen.insert(p) {
                continue;
            }
            routes.push(Route::new(
                p,
                self.link_local(),
                PortId(self.rng.below(u64::from(self.ports)) as u16),
                self.rng.range_inclusive(1, 8) as u8,
            ));
        }
        if with_default {
            routes.push(Route::new(
                Ipv6Prefix::DEFAULT_ROUTE,
                self.link_local(),
                PortId(self.rng.below(u64::from(self.ports)) as u16),
                15,
            ));
        }
        routes
    }

    /// A BGP-shaped prefix length, drawn from the measured length mass of
    /// the global IPv6 table (dominated by /48 provider-independent and
    /// /32 provider allocations, with a long tail of intermediate
    /// aggregates and a few short RIR super-blocks).  Weights are
    /// per-mille so the distribution is integer-exact and reproducible.
    pub fn bgp_prefix_len(&mut self) -> u8 {
        const LENGTH_MASS: [(u8, u16); 17] = [
            (48, 470),
            (32, 130),
            (44, 60),
            (40, 55),
            (36, 45),
            (29, 40),
            (46, 30),
            (64, 25),
            (34, 25),
            (30, 20),
            (33, 20),
            (45, 20),
            (42, 15),
            (35, 15),
            (28, 10),
            (24, 10),
            (47, 10),
        ];
        let mut roll = self.rng.below(1000) as u16;
        for (len, weight) in LENGTH_MASS {
            if roll < weight {
                return len;
            }
            roll -= weight;
        }
        48 // unreachable: the weights sum to 1000
    }

    /// A BGP-shaped global-unicast prefix: length from
    /// [`TrafficGen::bgp_prefix_len`], address in `2000::/3`.
    pub fn bgp_prefix(&mut self) -> Ipv6Prefix {
        let len = self.bgp_prefix_len();
        let mut octets = [0u8; 16];
        self.rng.fill_bytes(&mut octets);
        octets[0] = 0x20 | (octets[0] & 0x1f); // 2000::/3 global unicast
        Ipv6Prefix::new(Ipv6Address::new(octets).truncated(len), len).expect("len <= 64")
    }

    /// An internet-shaped routing table of `n` distinct prefixes, the way
    /// a BGP feed looks: a modest set of provider `/32` blocks, most
    /// longer prefixes carved *inside* one of them (the nesting and
    /// aliasing that separates a real LPM workload from uniform noise),
    /// and the rest scattered provider-independent space.  Scales to
    /// BGP-size tables (10k–1M entries) in one pass.
    pub fn bgp_table(&mut self, n: usize, with_default: bool) -> Vec<Route> {
        let providers = (n / 64).clamp(1, 4096);
        let blocks: Vec<Ipv6Address> = (0..providers)
            .map(|_| {
                let mut octets = [0u8; 16];
                self.rng.fill_bytes(&mut octets);
                octets[0] = 0x20 | (octets[0] & 0x1f);
                Ipv6Address::new(octets).truncated(32)
            })
            .collect();
        let mut routes = Vec::with_capacity(n + 1);
        let mut seen = std::collections::BTreeSet::new();
        // The providers announce their own /32 aggregates alongside the
        // customer more-specifics, so the blocks enter the table first.
        for block in blocks.iter().take(n) {
            let p = Ipv6Prefix::new(*block, 32).expect("/32");
            if !seen.insert(p) {
                continue;
            }
            routes.push(Route::new(
                p,
                self.link_local(),
                PortId(self.rng.below(u64::from(self.ports)) as u16),
                self.rng.range_inclusive(1, 8) as u8,
            ));
        }
        while routes.len() < n {
            let mut p = self.bgp_prefix();
            // Roughly 70% of the more-specifics live inside a provider
            // block: copy its top 32 bits under the drawn length.
            if p.len() > 32 && self.rng.below(10) < 7 {
                let block = blocks[self.rng.below(blocks.len() as u64) as usize];
                let mut addr = p.addr().to_words();
                addr[0] = block.to_words()[0];
                p = Ipv6Prefix::new(Ipv6Address::from_words(addr).truncated(p.len()), p.len())
                    .expect("len unchanged");
            }
            if !seen.insert(p) {
                continue;
            }
            routes.push(Route::new(
                p,
                self.link_local(),
                PortId(self.rng.below(u64::from(self.ports)) as u16),
                self.rng.range_inclusive(1, 8) as u8,
            ));
        }
        if with_default {
            routes.push(Route::new(
                Ipv6Prefix::DEFAULT_ROUTE,
                self.link_local(),
                PortId(self.rng.below(u64::from(self.ports)) as u16),
                15,
            ));
        }
        routes
    }

    /// A random link-local address (`fe80::/64` host part).
    pub fn link_local(&mut self) -> Ipv6Address {
        let mut octets = [0u8; 16];
        self.rng.fill_bytes(&mut octets[8..]);
        octets[0] = 0xfe;
        octets[1] = 0x80;
        for b in &mut octets[2..8] {
            *b = 0;
        }
        Ipv6Address::new(octets)
    }

    /// An address inside `prefix` (random host bits).
    pub fn addr_in(&mut self, prefix: &Ipv6Prefix) -> Ipv6Address {
        let mut addr = prefix.addr();
        for bit in prefix.len()..128 {
            addr = addr.with_bit(bit, self.rng.chance(0.5));
        }
        addr
    }

    /// A destination drawn from `routes` with probability `hit_ratio`,
    /// otherwise a (very likely) unrouted address in `4000::/4`.
    pub fn destination(&mut self, routes: &[Route], hit_ratio: f64) -> Ipv6Address {
        if !routes.is_empty() && self.rng.chance(hit_ratio) {
            let r = routes[self.rng.below(routes.len() as u64) as usize];
            self.addr_in(&r.prefix())
        } else {
            let mut octets = [0u8; 16];
            self.rng.fill_bytes(&mut octets);
            octets[0] = 0x40 | (octets[0] & 0x0f);
            Ipv6Address::new(octets)
        }
    }

    /// A forwarding datagram to `dst` with `payload_len` payload bytes.
    pub fn datagram(&mut self, dst: Ipv6Address, payload_len: usize) -> Datagram {
        let mut src = [0u8; 16];
        self.rng.fill_bytes(&mut src);
        src[0] = 0x20;
        Datagram::builder(Ipv6Address::new(src), dst)
            .hop_limit(self.rng.range_inclusive(2, 255) as u8)
            .flow_label(self.rng.below(1 << 20) as u32)
            .payload(NextHeader::Udp, vec![0u8; payload_len])
            .build()
    }

    /// A batch of `k` forwarding datagrams over `routes` as
    /// `(arrival port, datagram)` pairs.
    pub fn forwarding_workload(
        &mut self,
        routes: &[Route],
        k: usize,
        hit_ratio: f64,
        payload_len: usize,
    ) -> Vec<(PortId, Datagram)> {
        (0..k)
            .map(|_| {
                let dst = self.destination(routes, hit_ratio);
                let port = PortId(self.rng.below(u64::from(self.ports)) as u16);
                (port, self.datagram(dst, payload_len))
            })
            .collect()
    }

    /// A RIPng response advertising `routes` (as a neighbour would), ready
    /// to wrap in UDP.
    pub fn ripng_response(&mut self, routes: &[Route]) -> RipngPacket {
        RipngPacket {
            command: Command::Response,
            entries: routes
                .iter()
                .map(|r| RouteEntry::new(r.prefix(), r.route_tag(), r.metric().clamp(1, 15)))
                .collect(),
        }
    }

    /// A RIPng response *withdrawing* `routes`: every entry carries metric
    /// 16 (RFC 2080 "infinity"), which tells the receiver the routes are
    /// unreachable.  This is the churn half of add/withdraw scenarios.
    pub fn ripng_withdrawal(&mut self, routes: &[Route]) -> RipngPacket {
        RipngPacket {
            command: Command::Response,
            entries: routes
                .iter()
                .map(|r| RouteEntry::new(r.prefix(), r.route_tag(), 16))
                .collect(),
        }
    }

    /// Number of arrivals in one tick of a Poisson-ish process with the
    /// given mean (in thousandths, so `mean_millis = 1500` averages 1.5
    /// arrivals per tick).
    ///
    /// The count is drawn by thinning: `mean_millis / 1000` guaranteed
    /// arrivals plus Bernoulli trials for the fractional part, then a
    /// geometric-ish jitter term so the counts over-disperse the way bursty
    /// arrivals do.  All-integer parameters keep workload descriptions
    /// hashable and the stream reproducible.
    pub fn arrivals(&mut self, mean_millis: u64) -> u64 {
        let mut n = mean_millis / 1000;
        let frac = mean_millis % 1000;
        if frac > 0 && self.rng.below(1000) < frac {
            n += 1;
        }
        // Burst jitter: each extra arrival beyond the mean happens with
        // probability 1/4, compounding — E[extra] = 1/3, spread across
        // ticks it adds the clumping uniform arrivals lack.
        while self.rng.below(4) == 0 {
            n += 1;
            if n > mean_millis / 1000 + 8 {
                break;
            }
        }
        // Pay the jitter term's expectation (~1/3 arrival) back so the
        // long-run mean stays approximately `mean_millis / 1000`.
        if n > 0 && self.rng.below(3) == 0 {
            n -= 1;
        }
        n
    }
}

/// Wraps a RIPng packet in UDP/IPv6 multicast to `ff02::9`, as RIPng
/// updates travel on the wire (RFC 2080 §2.5.1).
pub fn ripng_datagram(from: Ipv6Address, packet: &RipngPacket) -> Datagram {
    let udp = taco_ipv6::udp::UdpDatagram::new(
        taco_ipv6::ripng::PORT,
        taco_ipv6::ripng::PORT,
        packet.to_bytes(),
        &from,
        &Ipv6Address::ALL_RIPNG_ROUTERS,
    );
    Datagram::builder(from, Ipv6Address::ALL_RIPNG_ROUTERS)
        .hop_limit(255)
        .payload(NextHeader::Udp, udp.to_bytes())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_routing::{LpmTable, SequentialTable};

    #[test]
    fn deterministic_given_seed() {
        let t1 = TrafficGen::new(7, 4).table(20, true);
        let t2 = TrafficGen::new(7, 4).table(20, true);
        assert_eq!(t1, t2);
        let t3 = TrafficGen::new(8, 4).table(20, true);
        assert_ne!(t1, t3);
    }

    #[test]
    fn table_has_requested_size_and_distinct_prefixes() {
        let routes = TrafficGen::new(1, 4).table(50, false);
        assert_eq!(routes.len(), 50);
        let mut prefixes: Vec<_> = routes.iter().map(|r| r.prefix()).collect();
        prefixes.sort();
        prefixes.dedup();
        assert_eq!(prefixes.len(), 50);
        assert!(routes.iter().all(|r| (16..=64).contains(&r.prefix().len())));
    }

    #[test]
    fn addr_in_respects_prefix() {
        let mut g = TrafficGen::new(2, 4);
        for _ in 0..50 {
            let p = g.prefix();
            let a = g.addr_in(&p);
            assert!(p.contains(&a), "{a} not in {p}");
        }
    }

    #[test]
    fn hit_ratio_extremes() {
        let mut g = TrafficGen::new(3, 4);
        let routes = g.table(20, false);
        let table = SequentialTable::from_routes(routes.iter().copied());
        for _ in 0..30 {
            let hit = g.destination(&routes, 1.0);
            assert!(table.lookup(&hit).is_hit(), "{hit}");
            let miss = g.destination(&routes, 0.0);
            assert!(!table.lookup(&miss).is_hit(), "{miss}");
        }
    }

    #[test]
    fn workload_shape() {
        let mut g = TrafficGen::new(4, 4);
        let routes = g.table(10, true);
        let wl = g.forwarding_workload(&routes, 25, 0.9, 64);
        assert_eq!(wl.len(), 25);
        assert!(wl.iter().all(|(p, _)| p.0 < 4));
        assert!(wl.iter().all(|(_, d)| d.payload().len() == 64));
        assert!(wl.iter().all(|(_, d)| d.header().hop_limit >= 2));
    }

    #[test]
    fn bgp_table_is_deterministic_distinct_and_bgp_shaped() {
        let routes = TrafficGen::new(11, 4).bgp_table(10_000, true);
        assert_eq!(routes, TrafficGen::new(11, 4).bgp_table(10_000, true));
        assert_eq!(routes.len(), 10_001);
        let mut prefixes: Vec<_> = routes.iter().map(|r| r.prefix()).collect();
        prefixes.sort();
        prefixes.dedup();
        assert_eq!(prefixes.len(), 10_001, "prefixes must be distinct");
        // /48 dominates the length histogram, as in the global table.
        let mut by_len = std::collections::BTreeMap::new();
        for p in &prefixes {
            *by_len.entry(p.len()).or_insert(0usize) += 1;
        }
        let n48 = by_len[&48];
        assert!((3500..6000).contains(&n48), "/48 share off: {n48}");
        assert!(by_len[&32] > by_len[&44], "/32 must outnumber /44");
        // The nesting that stresses LPM: most long prefixes sit inside a
        // shorter covering prefix from the same table.
        let shorts: Vec<_> = prefixes.iter().filter(|p| p.len() == 32).collect();
        let longs: Vec<_> = prefixes.iter().filter(|p| p.len() > 32).collect();
        let nested = longs.iter().filter(|l| shorts.iter().any(|s| s.covers(l))).count();
        assert!(
            nested * 2 > longs.len(),
            "expected mostly-nested more-specifics: {nested}/{}",
            longs.len()
        );
    }

    #[test]
    fn bgp_lengths_stay_global_unicast_and_in_range() {
        let mut g = TrafficGen::new(12, 4);
        for _ in 0..500 {
            let p = g.bgp_prefix();
            assert!((24..=64).contains(&p.len()), "{p}");
            assert_eq!(p.addr().to_words()[0] >> 29, 1, "{p} not in 2000::/3");
        }
    }

    #[test]
    fn link_local_shape() {
        let mut g = TrafficGen::new(5, 4);
        for _ in 0..10 {
            assert!(g.link_local().is_link_local());
        }
    }

    #[test]
    fn withdrawal_carries_infinity_metric() {
        let mut g = TrafficGen::new(9, 4);
        let routes = g.table(5, false);
        let pkt = g.ripng_withdrawal(&routes);
        assert_eq!(pkt.command, Command::Response);
        assert_eq!(pkt.entries.len(), 5);
        assert!(pkt.entries.iter().all(|e| e.metric == 16));
    }

    #[test]
    fn arrivals_track_the_requested_mean() {
        let mut g = TrafficGen::new(10, 4);
        let ticks = 20_000u64;
        for mean_millis in [500u64, 1000, 2500] {
            let total: u64 = (0..ticks).map(|_| g.arrivals(mean_millis)).sum();
            let mean = total as f64 / ticks as f64;
            let want = mean_millis as f64 / 1000.0;
            assert!(
                (mean - want).abs() < 0.25,
                "mean {mean:.3} too far from {want} for {mean_millis}"
            );
        }
        // And the stream is bursty: some tick must exceed the mean.
        let peak = (0..1000).map(|_| g.arrivals(1000)).max().unwrap();
        assert!(peak >= 3, "no bursts observed (peak {peak})");
    }

    #[test]
    fn ripng_datagram_parses_back() {
        let mut g = TrafficGen::new(6, 4);
        let routes = g.table(5, false);
        let pkt = g.ripng_response(&routes);
        let from = g.link_local();
        let d = ripng_datagram(from, &pkt);
        assert_eq!(d.header().dst, Ipv6Address::ALL_RIPNG_ROUTERS);
        let udp =
            taco_ipv6::udp::UdpDatagram::parse(d.payload(), &from, &Ipv6Address::ALL_RIPNG_ROUTERS)
                .unwrap();
        assert_eq!(udp.header().dst_port, taco_ipv6::ripng::PORT);
        assert_eq!(RipngPacket::parse(udp.data()).unwrap(), pkt);
    }
}
