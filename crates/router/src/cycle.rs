//! The cycle-accurate router: microcode + simulator + table image.
//!
//! [`CycleRouter`] packages everything needed to *measure* a configuration:
//! it schedules the forwarding microcode for a [`MachineConfig`], loads the
//! routing-table image into simulated data memory, feeds datagrams through
//! the iPPU and reads forwarded datagrams back from the oPPU.  The
//! resulting cycle counts are the raw material of the paper's Table 1.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use taco_ipv6::Datagram;
use taco_isa::{opt, schedule, MachineConfig, MoveSeq, Program};
use taco_routing::{BalancedTreeTable, CamTable, LpmTable, PortId, TableKind};
use taco_sim::{Processor, RtuBackend, RtuConfig, RtuResult, SimError, SimStats, StepMode};

use crate::layout::{
    bytes_to_words, datagram_to_words, dgram_slot, serialize_sequential, serialize_tree,
    words_to_bytes, DGRAM_SLOT_WORDS, TABLE_BASE,
};
use crate::microcode::{
    cam_program, pad_sequential_image, sequential_program, tree_program, MicrocodeOptions,
};

/// The Routing Table Unit backend that wraps the CAM model: keys are the
/// four destination-address words, answers carry the output interface.
#[derive(Debug)]
pub struct CamBackend(pub CamTable);

impl RtuBackend for CamBackend {
    fn lookup(&self, key: [u32; 4]) -> Option<RtuResult> {
        let addr = taco_ipv6::Ipv6Address::from_words(key);
        self.0
            .lookup(&addr)
            .into_route()
            .map(|r| RtuResult { iface: u32::from(r.interface().0), handle: 0 })
    }
}

/// A ready-to-run cycle-accurate router instance.
#[derive(Debug)]
pub struct CycleRouter {
    kind: TableKind,
    processor: Processor,
    slots: Vec<(u32, usize)>,
    malformed_rejected: u64,
}

/// Cache key for scheduled forwarding programs: the microcode is a pure
/// function of the table kind, the machine shape, the generator options and
/// one size parameter (the padded entry count for the sequential scan, zero
/// for the fixed-shape engines).
type ProgramKey = (TableKind, MachineConfig, MicrocodeOptions, usize);

fn program_cache() -> &'static Mutex<HashMap<ProgramKey, Arc<Program>>> {
    static CACHE: OnceLock<Mutex<HashMap<ProgramKey, Arc<Program>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns the scheduled, label-resolved program for `key`, generating (and
/// memoizing) it on first use.  Scheduling and optimising microcode costs
/// far more than a simulator run over a handful of datagrams, and the
/// evaluation pipeline rebuilds routers constantly — per measurement, per
/// CAM-latency fixed-point iteration, per scenario tick — always from the
/// same few (kind, machine, options) triples, so the hit rate is high and
/// the cache stays small.  The entries are immutable and shared by `Arc`.
fn cached_program(
    kind: TableKind,
    config: &MachineConfig,
    opts: &MicrocodeOptions,
    param: usize,
    generate: impl FnOnce() -> MoveSeq,
) -> Result<Arc<Program>, SimError> {
    let key = (kind, config.clone(), *opts, param);
    if let Some(p) = program_cache().lock().expect("program cache poisoned").get(&key) {
        return Ok(Arc::clone(p));
    }
    let mut seq = generate();
    opt::optimize(&mut seq);
    let mut program = schedule(&seq, config);
    program.resolve_labels().map_err(SimError::UnresolvedLabel)?;
    debug_assert_eq!(
        taco_isa::validate_schedule(&program, config),
        Ok(()),
        "generated {kind} microcode failed structural validation"
    );
    let program = Arc::new(program);
    program_cache()
        .lock()
        .expect("program cache poisoned")
        .entry(key)
        .or_insert_with(|| Arc::clone(&program));
    Ok(program)
}

impl CycleRouter {
    /// Builds a router whose table is scanned **sequentially** in memory.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction errors (they indicate microcode
    /// bugs, not user error) and fails if the table image does not fit the
    /// memory map.
    pub fn sequential(
        config: &MachineConfig,
        table: &taco_routing::SequentialTable,
        opts: &MicrocodeOptions,
    ) -> Result<Self, SimError> {
        let mut image = serialize_sequential(table);
        pad_sequential_image(&mut image, opts.unroll);
        let padded_entries = image.len() / crate::layout::SEQ_ENTRY_WORDS as usize;
        let tuned =
            MicrocodeOptions { screen_word: crate::microcode::choose_screen_word(table), ..*opts };
        let program =
            cached_program(TableKind::Sequential, config, &tuned, padded_entries, || {
                sequential_program(padded_entries, &tuned)
            })?;
        Self::build(TableKind::Sequential, config, program, image, None)
    }

    /// Builds a router over the **balanced-tree** image.
    ///
    /// # Errors
    ///
    /// See [`CycleRouter::sequential`].
    pub fn tree(
        config: &MachineConfig,
        table: &BalancedTreeTable,
        opts: &MicrocodeOptions,
    ) -> Result<Self, SimError> {
        let image = serialize_tree(table);
        let program =
            cached_program(TableKind::BalancedTree, config, opts, 0, || tree_program(opts))?;
        Self::build(TableKind::BalancedTree, config, program, image, None)
    }

    /// Builds a router over the **unibit-trie** image — the software
    /// baseline whose probe count tracks prefix depth rather than table
    /// size.
    ///
    /// # Errors
    ///
    /// See [`CycleRouter::sequential`].
    pub fn trie(
        config: &MachineConfig,
        table: &taco_routing::TrieTable,
        opts: &MicrocodeOptions,
    ) -> Result<Self, SimError> {
        let image = crate::layout::serialize_trie(table);
        let program = cached_program(TableKind::Trie, config, opts, 0, || {
            crate::microcode::trie_program(opts)
        })?;
        Self::build(TableKind::Trie, config, program, image, None)
    }

    /// Builds a router over the **PATRICIA** image — the path-compressed
    /// engine whose walk visits one node per *branching* bit, keeping both
    /// probes and table words bounded at internet-size tables.
    ///
    /// # Errors
    ///
    /// See [`CycleRouter::sequential`].
    pub fn patricia(
        config: &MachineConfig,
        table: &taco_routing::PatriciaTable,
        opts: &MicrocodeOptions,
    ) -> Result<Self, SimError> {
        let image = crate::layout::serialize_patricia(table);
        let program = cached_program(TableKind::Patricia, config, opts, 0, || {
            crate::microcode::patricia_program(opts)
        })?;
        Self::build(TableKind::Patricia, config, program, image, None)
    }

    /// Builds a router whose lookups go to a **CAM-backed RTU** with the
    /// given search latency in cycles (`ceil(40 ns × f_clk)` for the
    /// paper's part — see [`CamSpec::search_cycles`]).
    ///
    /// # Errors
    ///
    /// See [`CycleRouter::sequential`].
    ///
    /// [`CamSpec::search_cycles`]: taco_routing::cam::CamSpec::search_cycles
    pub fn cam(
        config: &MachineConfig,
        table: CamTable,
        rtu_latency: u32,
        opts: &MicrocodeOptions,
    ) -> Result<Self, SimError> {
        let program = cached_program(TableKind::Cam, config, opts, 0, || cam_program(opts))?;
        let rtu = RtuConfig::new(Box::new(CamBackend(table))).with_latency(rtu_latency);
        Self::build(TableKind::Cam, config, program, Vec::new(), Some(rtu))
    }

    /// Builds a router for any table organisation from a plain route list —
    /// the one dispatch point over [`CycleRouter::sequential`],
    /// [`CycleRouter::tree`], [`CycleRouter::trie`] and [`CycleRouter::cam`]
    /// (each serialises a different concrete engine, so the dispatch cannot
    /// go through `Box<dyn LpmTable>`).
    ///
    /// `rtu_latency` is only consulted for [`TableKind::Cam`].
    ///
    /// # Errors
    ///
    /// See [`CycleRouter::sequential`].
    pub fn for_kind(
        kind: TableKind,
        config: &MachineConfig,
        routes: &[taco_routing::Route],
        rtu_latency: u32,
        opts: &MicrocodeOptions,
    ) -> Result<Self, SimError> {
        let routes = routes.iter().copied();
        match kind {
            TableKind::Sequential => {
                Self::sequential(config, &taco_routing::SequentialTable::from_routes(routes), opts)
            }
            TableKind::BalancedTree => {
                Self::tree(config, &BalancedTreeTable::from_routes(routes), opts)
            }
            TableKind::Trie => {
                Self::trie(config, &taco_routing::TrieTable::from_routes(routes), opts)
            }
            TableKind::Patricia => {
                Self::patricia(config, &taco_routing::PatriciaTable::from_routes(routes), opts)
            }
            TableKind::Cam => Self::cam(config, CamTable::from_routes(routes), rtu_latency, opts),
        }
    }

    fn build(
        kind: TableKind,
        config: &MachineConfig,
        program: Arc<Program>,
        image: Vec<u32>,
        rtu: Option<RtuConfig>,
    ) -> Result<Self, SimError> {
        let mut processor = Processor::new_shared(config.clone(), program)?;
        processor.memory_mut().load(TABLE_BASE, &image)?;
        if let Some(rtu) = rtu {
            processor.set_rtu(rtu);
        }
        Ok(CycleRouter { kind, processor, slots: Vec::new(), malformed_rejected: 0 })
    }

    /// The table organisation this instance implements.
    pub fn kind(&self) -> TableKind {
        self.kind
    }

    /// The underlying simulator, for fine-grained inspection.
    pub fn processor(&self) -> &Processor {
        &self.processor
    }

    /// Which step loop the underlying simulator uses (see
    /// [`taco_sim::StepMode`]).
    pub fn step_mode(&self) -> StepMode {
        self.processor.step_mode()
    }

    /// Selects the simulator step loop — compiled (pre-decoded schedule)
    /// or interpretive (the reference path).  Metrics are identical either
    /// way; this is a perf/debug switch.
    pub fn set_step_mode(&mut self, mode: StepMode) {
        self.processor.set_step_mode(mode);
    }

    /// Enqueues a whole batch of `(port, datagram)` pairs back-to-back, so
    /// one `run` drains them through the pipeline in a single compiled
    /// schedule walk instead of paying per-datagram setup.
    ///
    /// # Errors
    ///
    /// See [`CycleRouter::enqueue`]; datagrams enqueued before the failing
    /// one stay queued.
    pub fn enqueue_batch<'a>(
        &mut self,
        batch: impl IntoIterator<Item = (PortId, &'a Datagram)>,
    ) -> Result<(), SimError> {
        for (port, datagram) in batch {
            self.enqueue(port, datagram)?;
        }
        Ok(())
    }

    /// Copies `datagram` into the next buffer slot and queues it at the
    /// iPPU as having arrived on `port`.
    ///
    /// # Errors
    ///
    /// Fails when the buffer area is exhausted (or the datagram exceeds a
    /// slot) — enqueue at most ~100 datagrams per run.
    pub fn enqueue(&mut self, port: PortId, datagram: &Datagram) -> Result<(), SimError> {
        let slot = self.slots.len() as u32;
        let addr = dgram_slot(slot);
        let words = datagram_to_words(datagram);
        if words.len() as u32 > DGRAM_SLOT_WORDS {
            return Err(SimError::MemoryOutOfBounds {
                addr: addr + words.len() as u32,
                size: self.processor.memory().size(),
            });
        }
        self.processor.memory_mut().load(addr, &words)?;
        self.processor.push_input(addr, u32::from(port.0));
        self.slots.push((addr, datagram.wire_len()));
        Ok(())
    }

    /// Queues raw wire bytes — possibly malformed — the way a line card
    /// would.  The paper's cards "provide fully assembled decapsulated IPv6
    /// datagrams", so frames no card could ever hand over (shorter than the
    /// 40-byte fixed header, or whose declared payload length disagrees
    /// with the frame length) are rejected here and counted by
    /// [`CycleRouter::malformed_rejected`], returning `Ok(false)`.
    /// Length-consistent frames enter the pipeline, where the microcode's
    /// version screen drops anything that is not IPv6; returns `Ok(true)`.
    ///
    /// # Errors
    ///
    /// Fails when the frame exceeds a buffer slot (see
    /// [`CycleRouter::enqueue`]).
    pub fn enqueue_raw(&mut self, port: PortId, bytes: &[u8]) -> Result<bool, SimError> {
        if bytes.len() < 40 {
            self.malformed_rejected += 1;
            return Ok(false);
        }
        let declared = usize::from(u16::from_be_bytes([bytes[4], bytes[5]]));
        if bytes.len() != 40 + declared {
            self.malformed_rejected += 1;
            return Ok(false);
        }
        let slot = self.slots.len() as u32;
        let addr = dgram_slot(slot);
        let words = bytes_to_words(bytes);
        if words.len() as u32 > DGRAM_SLOT_WORDS {
            return Err(SimError::MemoryOutOfBounds {
                addr: addr + words.len() as u32,
                size: self.processor.memory().size(),
            });
        }
        self.processor.memory_mut().load(addr, &words)?;
        self.processor.push_input(addr, u32::from(port.0));
        self.slots.push((addr, bytes.len()));
        Ok(true)
    }

    /// Frames [`CycleRouter::enqueue_raw`] refused at the card.
    pub fn malformed_rejected(&self) -> u64 {
        self.malformed_rejected
    }

    /// Runs until the program halts (batch mode drains the input queue and
    /// stops), returning the collected statistics.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults and the watchdog.
    pub fn run(&mut self, budget: u64) -> Result<SimStats, SimError> {
        self.processor.run(budget)
    }

    /// Like [`CycleRouter::run`], reporting cycle-level events to `tracer`
    /// (see [`taco_sim::trace`]).
    ///
    /// # Errors
    ///
    /// See [`CycleRouter::run`].
    pub fn run_traced(
        &mut self,
        budget: u64,
        tracer: &mut dyn taco_sim::Tracer,
    ) -> Result<SimStats, SimError> {
        self.processor.run_traced(budget, tracer)
    }

    /// Like [`CycleRouter::run`], with `faults` injecting transient bus/FU
    /// stalls (see [`taco_sim::FaultInjector`]).
    ///
    /// # Errors
    ///
    /// See [`CycleRouter::run`].
    pub fn run_fault_injected(
        &mut self,
        budget: u64,
        faults: &mut dyn taco_sim::FaultInjector,
    ) -> Result<SimStats, SimError> {
        self.processor.run_fault_injected(budget, faults)
    }

    /// [`CycleRouter::run_fault_injected`] with a tracer attached, so the
    /// injected fault spans land in the trace.
    ///
    /// # Errors
    ///
    /// See [`CycleRouter::run`].
    pub fn run_fault_traced(
        &mut self,
        budget: u64,
        faults: &mut dyn taco_sim::FaultInjector,
        tracer: &mut dyn taco_sim::Tracer,
    ) -> Result<SimStats, SimError> {
        self.processor.run_fault_traced(budget, faults, tracer)
    }

    /// Forwarded datagrams in emission order, parsed back out of data
    /// memory, as `(output port, datagram)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the microcode emitted a pointer that was never enqueued or
    /// corrupted a datagram beyond parsing — both are simulator-level bugs
    /// that tests must surface loudly.
    pub fn forwarded(&self) -> Vec<(PortId, Datagram)> {
        self.processor
            .outputs()
            .iter()
            .map(|&(ptr, iface)| {
                let &(addr, byte_len) = self
                    .slots
                    .iter()
                    .find(|(a, _)| *a == ptr)
                    .unwrap_or_else(|| panic!("oppu emitted unknown pointer {ptr:#x}"));
                let words = self
                    .processor
                    .memory()
                    .read_block(addr, byte_len.div_ceil(4) as u32)
                    .expect("slot fits memory");
                let bytes = words_to_bytes(words, byte_len);
                let datagram = Datagram::parse(&bytes).expect("forwarded datagram reparses");
                (PortId(iface as u16), datagram)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_ipv6::NextHeader;
    use taco_routing::{Route, SequentialTable};

    fn route(p: &str, port: u16) -> Route {
        Route::new(p.parse().unwrap(), "fe80::1".parse().unwrap(), PortId(port), 1)
    }

    fn dgram(dst: &str, hl: u8) -> Datagram {
        Datagram::builder("2001:db8:99::1".parse().unwrap(), dst.parse().unwrap())
            .hop_limit(hl)
            .payload(NextHeader::Udp, vec![0xab; 16])
            .build()
    }

    fn seq_router(config: MachineConfig) -> CycleRouter {
        let table = SequentialTable::from_routes([
            route("2001:db8::/32", 1),
            route("2001:db8:aa::/48", 2),
            route("::/0", 3),
        ]);
        CycleRouter::sequential(&config, &table, &MicrocodeOptions::default()).unwrap()
    }

    #[test]
    fn sequential_forwards_longest_match() {
        let mut r = seq_router(MachineConfig::three_bus_one_fu());
        r.enqueue(PortId(0), &dgram("2001:db8:aa::5", 64)).unwrap();
        r.enqueue(PortId(0), &dgram("2001:db8:bb::5", 64)).unwrap();
        r.enqueue(PortId(0), &dgram("9999::1", 64)).unwrap();
        r.run(1_000_000).unwrap();
        let out = r.forwarded();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].0, PortId(2));
        assert_eq!(out[1].0, PortId(1));
        assert_eq!(out[2].0, PortId(3));
        // Hop limits decremented in memory.
        assert!(out.iter().all(|(_, d)| d.header().hop_limit == 63));
    }

    #[test]
    fn sequential_drops_hop_limit_expired() {
        let mut r = seq_router(MachineConfig::three_bus_one_fu());
        r.enqueue(PortId(0), &dgram("2001:db8::5", 1)).unwrap();
        r.enqueue(PortId(0), &dgram("2001:db8::5", 0)).unwrap();
        r.enqueue(PortId(0), &dgram("2001:db8::5", 2)).unwrap();
        r.run(1_000_000).unwrap();
        let out = r.forwarded();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.header().hop_limit, 1);
    }

    #[test]
    fn raw_frames_screened_at_card_then_version_checked_by_microcode() {
        let mut r = seq_router(MachineConfig::three_bus_one_fu());
        // Truncated or length-inconsistent frames never leave a real line
        // card; the card-level screen refuses them.
        assert_eq!(r.enqueue_raw(PortId(0), &[0xff; 12]), Ok(false));
        let mut lying = dgram("2001:db8::5", 64).to_bytes();
        lying.truncate(lying.len() - 4); // length field now over-claims
        assert_eq!(r.enqueue_raw(PortId(0), &lying), Ok(false));
        assert_eq!(r.malformed_rejected(), 2);
        // A length-consistent frame with a bad version nibble reaches the
        // pipeline, where the microcode's version screen drops it.
        let mut bad_version = dgram("2001:db8::5", 64).to_bytes();
        bad_version[0] = (bad_version[0] & 0x0f) | (4 << 4);
        assert_eq!(r.enqueue_raw(PortId(0), &bad_version), Ok(true));
        // A well-formed frame through the raw path still forwards.
        let good = dgram("2001:db8:aa::5", 64).to_bytes();
        assert_eq!(r.enqueue_raw(PortId(0), &good), Ok(true));
        r.run(1_000_000).unwrap();
        let out = r.forwarded();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, PortId(2));
        assert_eq!(r.malformed_rejected(), 2);
    }

    #[test]
    fn sequential_miss_drops() {
        let table = SequentialTable::from_routes([route("2001:db8::/32", 1)]);
        let mut r = CycleRouter::sequential(
            &MachineConfig::three_bus_one_fu(),
            &table,
            &MicrocodeOptions::default(),
        )
        .unwrap();
        r.enqueue(PortId(0), &dgram("9999::1", 64)).unwrap();
        r.run(1_000_000).unwrap();
        assert!(r.forwarded().is_empty());
    }

    #[test]
    fn tree_forwards_longest_match() {
        let table = BalancedTreeTable::from_routes([
            route("2001:db8::/32", 1),
            route("2001:db8:aa::/48", 2),
            route("::/0", 3),
        ]);
        let mut r = CycleRouter::tree(
            &MachineConfig::three_bus_one_fu(),
            &table,
            &MicrocodeOptions::default(),
        )
        .unwrap();
        r.enqueue(PortId(0), &dgram("2001:db8:aa::5", 64)).unwrap();
        r.enqueue(PortId(0), &dgram("2001:db8:bb::5", 64)).unwrap();
        r.enqueue(PortId(0), &dgram("9999::1", 64)).unwrap();
        r.run(1_000_000).unwrap();
        let ports: Vec<u16> = r.forwarded().iter().map(|(p, _)| p.0).collect();
        assert_eq!(ports, vec![2, 1, 3]);
    }

    #[test]
    fn trie_forwards_longest_match() {
        let table = taco_routing::TrieTable::from_routes([
            route("2001:db8::/32", 1),
            route("2001:db8:aa::/48", 2),
            route("::/0", 3),
        ]);
        let mut r = CycleRouter::trie(
            &MachineConfig::three_bus_one_fu(),
            &table,
            &MicrocodeOptions::default(),
        )
        .unwrap();
        r.enqueue(PortId(0), &dgram("2001:db8:aa::5", 64)).unwrap();
        r.enqueue(PortId(0), &dgram("2001:db8:bb::5", 64)).unwrap();
        r.enqueue(PortId(0), &dgram("9999::1", 64)).unwrap();
        r.run(10_000_000).unwrap();
        let ports: Vec<u16> = r.forwarded().iter().map(|(p, _)| p.0).collect();
        assert_eq!(ports, vec![2, 1, 3]);
    }

    #[test]
    fn trie_handles_host_route_and_miss() {
        let table = taco_routing::TrieTable::from_routes([route("2001:db8::7/128", 5)]);
        let mut r = CycleRouter::trie(
            &MachineConfig::three_bus_one_fu(),
            &table,
            &MicrocodeOptions::default(),
        )
        .unwrap();
        r.enqueue(PortId(0), &dgram("2001:db8::7", 64)).unwrap(); // exact /128 hit
        r.enqueue(PortId(0), &dgram("2001:db8::8", 64)).unwrap(); // miss
        r.run(10_000_000).unwrap();
        let ports: Vec<u16> = r.forwarded().iter().map(|(p, _)| p.0).collect();
        assert_eq!(ports, vec![5]);
    }

    #[test]
    fn trie_cost_tracks_prefix_depth_not_size() {
        let cost = |routes: Vec<taco_routing::Route>| -> u64 {
            let table = taco_routing::TrieTable::from_routes(routes);
            let mut r = CycleRouter::trie(
                &MachineConfig::one_bus_one_fu(),
                &table,
                &MicrocodeOptions::default(),
            )
            .unwrap();
            r.enqueue(PortId(0), &dgram("2001:db8:1::9", 64)).unwrap();
            r.run(10_000_000).unwrap().cycles
        };
        // Same /48 depth, 4 vs 64 entries: near-identical cost.
        let small = cost((0..4u16).map(|i| route(&format!("2001:db8:{i:x}::/48"), i)).collect());
        let large = cost((0..64u16).map(|i| route(&format!("2001:db8:{i:x}::/48"), i)).collect());
        let ratio = large as f64 / small as f64;
        assert!(ratio < 1.15, "trie cost must track depth, not size: {small} vs {large}");
    }

    #[test]
    fn patricia_forwards_longest_match() {
        let table = taco_routing::PatriciaTable::from_routes([
            route("2001:db8::/32", 1),
            route("2001:db8:aa::/48", 2),
            route("::/0", 3),
        ]);
        let mut r = CycleRouter::patricia(
            &MachineConfig::three_bus_one_fu(),
            &table,
            &MicrocodeOptions::default(),
        )
        .unwrap();
        r.enqueue(PortId(0), &dgram("2001:db8:aa::5", 64)).unwrap();
        r.enqueue(PortId(0), &dgram("2001:db8:bb::5", 64)).unwrap();
        r.enqueue(PortId(0), &dgram("9999::1", 64)).unwrap();
        r.run(10_000_000).unwrap();
        let ports: Vec<u16> = r.forwarded().iter().map(|(p, _)| p.0).collect();
        assert_eq!(ports, vec![2, 1, 3]);
    }

    #[test]
    fn patricia_handles_host_route_and_miss() {
        let table = taco_routing::PatriciaTable::from_routes([route("2001:db8::7/128", 5)]);
        let mut r = CycleRouter::patricia(
            &MachineConfig::three_bus_one_fu(),
            &table,
            &MicrocodeOptions::default(),
        )
        .unwrap();
        r.enqueue(PortId(0), &dgram("2001:db8::7", 64)).unwrap(); // exact /128 hit
        r.enqueue(PortId(0), &dgram("2001:db8::8", 64)).unwrap(); // miss
        r.run(10_000_000).unwrap();
        let ports: Vec<u16> = r.forwarded().iter().map(|(p, _)| p.0).collect();
        assert_eq!(ports, vec![5]);
    }

    #[test]
    fn patricia_cost_tracks_branching_depth_not_size() {
        let cost = |routes: Vec<taco_routing::Route>| -> u64 {
            let table = taco_routing::PatriciaTable::from_routes(routes);
            let mut r = CycleRouter::patricia(
                &MachineConfig::one_bus_one_fu(),
                &table,
                &MicrocodeOptions::default(),
            )
            .unwrap();
            r.enqueue(PortId(0), &dgram("2001:db8:1::9", 64)).unwrap();
            r.run(10_000_000).unwrap().cycles
        };
        // Same /48 depth, 4 vs 64 entries: the walk only pays for the extra
        // *branching* levels (log2 of the fan-out), nowhere near the 16x a
        // linear scan would charge for 16x the entries.
        let small = cost((0..4u16).map(|i| route(&format!("2001:db8:{i:x}::/48"), i)).collect());
        let large = cost((0..64u16).map(|i| route(&format!("2001:db8:{i:x}::/48"), i)).collect());
        let ratio = large as f64 / small as f64;
        assert!(ratio < 2.5, "patricia cost must track branch depth, not size: {small} vs {large}");
    }

    #[test]
    fn cam_forwards_and_stalls() {
        let table = CamTable::from_routes([route("2001:db8::/32", 1), route("::/0", 3)]);
        let mut r = CycleRouter::cam(
            &MachineConfig::three_bus_one_fu(),
            table,
            8,
            &MicrocodeOptions::default(),
        )
        .unwrap();
        r.enqueue(PortId(0), &dgram("2001:db8::5", 64)).unwrap();
        let stats = r.run(1_000_000).unwrap();
        assert_eq!(r.forwarded()[0].0, PortId(1));
        assert!(stats.stall_cycles > 0, "cam latency should stall: {stats}");
    }

    #[test]
    fn per_datagram_cost_is_linear_in_table_size_for_sequential() {
        let cost = |n: usize| -> u64 {
            let table = SequentialTable::from_routes(
                (0..n as u16).map(|i| route(&format!("2001:db8:{i:x}::/48"), i)),
            );
            let mut r = CycleRouter::sequential(
                &MachineConfig::one_bus_one_fu(),
                &table,
                &MicrocodeOptions::default(),
            )
            .unwrap();
            // Worst case: no entry matches.
            r.enqueue(PortId(0), &dgram("9999::1", 64)).unwrap();
            r.run(10_000_000).unwrap().cycles
        };
        let c25 = cost(25);
        let c100 = cost(100);
        let ratio = c100 as f64 / c25 as f64;
        assert!((3.0..5.0).contains(&ratio), "expected ~4x, got {ratio} ({c25} vs {c100})");
    }

    #[test]
    fn tree_cost_is_logarithmic() {
        let cost = |n: usize| -> u64 {
            let table = BalancedTreeTable::from_routes(
                (0..n as u16).map(|i| route(&format!("2001:db8:{i:x}::/48"), i)),
            );
            let mut r = CycleRouter::tree(
                &MachineConfig::one_bus_one_fu(),
                &table,
                &MicrocodeOptions::default(),
            )
            .unwrap();
            r.enqueue(PortId(0), &dgram("9999::1", 64)).unwrap();
            r.run(10_000_000).unwrap().cycles
        };
        let c25 = cost(25);
        let c100 = cost(100);
        // log2(201)/log2(51) ≈ 1.35 — nowhere near the 4x of a linear scan.
        assert!((c100 as f64) < 1.8 * c25 as f64, "tree should be logarithmic: {c25} vs {c100}");
    }

    #[test]
    fn empty_tables_drop_everything_on_all_engines() {
        let config = MachineConfig::three_bus_one_fu();
        let opts = MicrocodeOptions::default();
        let d = dgram("2001:db8::1", 64);
        let mut routers: Vec<CycleRouter> = vec![
            CycleRouter::sequential(&config, &SequentialTable::new(), &opts).unwrap(),
            CycleRouter::tree(&config, &BalancedTreeTable::new(), &opts).unwrap(),
            CycleRouter::trie(&config, &taco_routing::TrieTable::new(), &opts).unwrap(),
            CycleRouter::patricia(&config, &taco_routing::PatriciaTable::new(), &opts).unwrap(),
            CycleRouter::cam(&config, CamTable::new(), 2, &opts).unwrap(),
        ];
        for r in &mut routers {
            r.enqueue(PortId(0), &d).unwrap();
            r.run(1_000_000).unwrap_or_else(|e| panic!("{:?} hung: {e}", r.kind()));
            assert!(r.forwarded().is_empty(), "{:?}", r.kind());
        }
    }

    #[test]
    fn for_kind_matches_dedicated_constructors() {
        let config = MachineConfig::three_bus_one_fu();
        let opts = MicrocodeOptions::default();
        let routes =
            vec![route("2001:db8::/32", 1), route("2001:db8:aa::/48", 2), route("::/0", 3)];
        for kind in TableKind::ALL_KINDS {
            let mut r = CycleRouter::for_kind(kind, &config, &routes, 4, &opts).unwrap();
            assert_eq!(r.kind(), kind);
            r.enqueue(PortId(0), &dgram("2001:db8:aa::5", 64)).unwrap();
            r.run(10_000_000).unwrap();
            assert_eq!(r.forwarded()[0].0, PortId(2), "{kind}");
        }
    }

    #[test]
    fn identical_configurations_share_one_scheduled_program() {
        let config = MachineConfig::three_bus_one_fu();
        let a = seq_router(config.clone());
        let b = seq_router(config);
        assert!(
            std::ptr::eq(a.processor().program(), b.processor().program()),
            "same (kind, machine, options, size) must hit the program cache"
        );
    }

    #[test]
    fn different_table_sizes_get_different_sequential_programs() {
        let config = MachineConfig::three_bus_one_fu();
        let small = SequentialTable::from_routes([route("2001:db8::/32", 1)]);
        let large = SequentialTable::from_routes(
            (0..50u16).map(|i| route(&format!("2001:db8:{i:x}::/48"), i)),
        );
        let a = CycleRouter::sequential(&config, &small, &MicrocodeOptions::default()).unwrap();
        let b = CycleRouter::sequential(&config, &large, &MicrocodeOptions::default()).unwrap();
        assert!(!std::ptr::eq(a.processor().program(), b.processor().program()));
    }

    #[test]
    fn enqueue_batch_matches_sequential_enqueues() {
        let d1 = dgram("2001:db8:aa::5", 64);
        let d2 = dgram("2001:db8:bb::5", 64);
        let mut batched = seq_router(MachineConfig::three_bus_one_fu());
        batched.enqueue_batch([(PortId(0), &d1), (PortId(1), &d2)]).unwrap();
        let mut single = seq_router(MachineConfig::three_bus_one_fu());
        single.enqueue(PortId(0), &d1).unwrap();
        single.enqueue(PortId(1), &d2).unwrap();
        assert_eq!(batched.run(1_000_000).unwrap(), single.run(1_000_000).unwrap());
        assert_eq!(batched.forwarded(), single.forwarded());
    }

    #[test]
    fn step_modes_forward_identically() {
        let mut outputs = Vec::new();
        for mode in [taco_sim::StepMode::Compiled, taco_sim::StepMode::Interpretive] {
            let mut r = seq_router(MachineConfig::three_bus_one_fu());
            r.set_step_mode(mode);
            assert_eq!(r.step_mode(), mode);
            r.enqueue(PortId(0), &dgram("2001:db8:aa::5", 64)).unwrap();
            r.enqueue(PortId(0), &dgram("9999::1", 64)).unwrap();
            outputs.push((r.run(1_000_000).unwrap(), r.forwarded()));
        }
        assert_eq!(outputs[0], outputs[1]);
    }

    #[test]
    fn more_buses_forward_in_fewer_cycles() {
        let run = |config: MachineConfig| -> u64 {
            let mut r = seq_router(config);
            r.enqueue(PortId(0), &dgram("2001:db8:aa::5", 64)).unwrap();
            r.run(10_000_000).unwrap().cycles
        };
        let one = run(MachineConfig::one_bus_one_fu());
        let three = run(MachineConfig::three_bus_one_fu());
        let wide = run(MachineConfig::three_bus_three_fu());
        assert!(three < one, "3 buses ({three}) must beat 1 bus ({one})");
        assert!(wide <= three, "3 FUs ({wide}) must not lose to 1 FU ({three})");
    }
}
