//! Line-card models.
//!
//! "Each network card contains a set of independent input and output
//! registers that can be read and written by the processor.  The line cards
//! deal with implementing the protocol and its specific tasks, provide
//! fully assembled decapsulated IPv6 datagrams to the processor, take care
//! of fragmentation and encapsulation of outgoing datagrams, and also
//! resolve ARP/RARP requests."
//!
//! The paper treats line cards as commercial black boxes (Intel IFX18103,
//! Cisco GigE); [`LineCard`] models exactly the visible behaviour: an input
//! queue of complete datagrams and an output buffer, with an MTU check on
//! ingress.

use std::collections::VecDeque;

use taco_ipv6::Datagram;
use taco_routing::PortId;

/// Default Ethernet MTU in bytes.
pub const DEFAULT_MTU: usize = 1500;

/// One queued input frame: either a datagram the card parsed, or raw wire
/// bytes (possibly malformed) handed to the core as-is — fault injection
/// uses the raw form, so the forwarding core's parse failures are exercised
/// instead of being screened out here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A well-formed datagram.
    Parsed(Datagram),
    /// Raw wire bytes, not validated beyond the MTU check.
    Raw(Vec<u8>),
}

impl Frame {
    /// The frame's wire image.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            Frame::Parsed(d) => d.to_bytes(),
            Frame::Raw(b) => b,
        }
    }
}

/// One line card: a router port with input and output buffers.
#[derive(Debug, Clone)]
pub struct LineCard {
    port: PortId,
    mtu: usize,
    capacity: usize,
    link_up: bool,
    input: VecDeque<Frame>,
    output: Vec<Datagram>,
    dropped_oversize: u64,
    dropped_overflow: u64,
    dropped_link_down: u64,
    polled: u64,
}

impl Default for LineCard {
    fn default() -> Self {
        LineCard {
            port: PortId::default(),
            mtu: DEFAULT_MTU,
            capacity: usize::MAX,
            link_up: true,
            input: VecDeque::new(),
            output: Vec::new(),
            dropped_oversize: 0,
            dropped_overflow: 0,
            dropped_link_down: 0,
            polled: 0,
        }
    }
}

impl LineCard {
    /// Creates a line card for `port` with the default Ethernet MTU and an
    /// unbounded input buffer.
    pub fn new(port: PortId) -> Self {
        LineCard { port, ..LineCard::default() }
    }

    /// Creates a line card with an explicit MTU.
    pub fn with_mtu(port: PortId, mtu: usize) -> Self {
        LineCard { port, mtu, ..LineCard::default() }
    }

    /// Bounds the input buffer to `capacity` datagrams; arrivals beyond it
    /// are tail-dropped (counted by [`LineCard::dropped_overflow`]).  Real
    /// cards have finite ingress FIFOs — this is what makes overload
    /// scenarios measure drops instead of growing an infinite queue.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets the input-buffer bound on an existing card (see
    /// [`LineCard::with_capacity`]); already-queued datagrams are kept even
    /// if they exceed the new bound.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
    }

    /// The port this card serves.
    pub fn port(&self) -> PortId {
        self.port
    }

    /// The configured MTU in bytes.
    pub fn mtu(&self) -> usize {
        self.mtu
    }

    /// A frame arrives from the wire.  Oversize datagrams are dropped (the
    /// real card would never have reassembled them), as are arrivals to a
    /// full input buffer or a card whose link is down; returns `true` if
    /// the datagram was queued.
    pub fn receive(&mut self, datagram: Datagram) -> bool {
        if !self.link_up {
            self.dropped_link_down += 1;
            return false;
        }
        if datagram.wire_len() > self.mtu {
            self.dropped_oversize += 1;
            return false;
        }
        if self.input.len() >= self.capacity {
            self.dropped_overflow += 1;
            return false;
        }
        self.input.push_back(Frame::Parsed(datagram));
        true
    }

    /// Raw wire bytes arrive — possibly truncated or otherwise malformed.
    /// The card only enforces physical-layer limits (link up, MTU,
    /// capacity); anything deeper is the forwarding core's to detect and
    /// drop gracefully.
    pub fn receive_raw(&mut self, bytes: Vec<u8>) -> bool {
        if !self.link_up {
            self.dropped_link_down += 1;
            return false;
        }
        if bytes.len() > self.mtu {
            self.dropped_oversize += 1;
            return false;
        }
        if self.input.len() >= self.capacity {
            self.dropped_overflow += 1;
            return false;
        }
        self.input.push_back(Frame::Raw(bytes));
        true
    }

    /// The processor polls the input buffer (the iPPU's scan).
    pub fn poll_input(&mut self) -> Option<Frame> {
        let d = self.input.pop_front();
        if d.is_some() {
            self.polled += 1;
        }
        d
    }

    /// Sets the carrier state; a down link refuses every arrival (counted
    /// by [`LineCard::dropped_link_down`]) until it comes back up.
    pub fn set_link_up(&mut self, up: bool) {
        self.link_up = up;
    }

    /// Whether the link currently has carrier.
    pub fn link_up(&self) -> bool {
        self.link_up
    }

    /// Frames refused while the link was down.
    pub fn dropped_link_down(&self) -> u64 {
        self.dropped_link_down
    }

    /// Number of datagrams waiting in the input buffer.
    pub fn pending(&self) -> usize {
        self.input.len()
    }

    /// The processor writes a finished datagram to the output buffer (the
    /// oPPU's drain).
    pub fn transmit(&mut self, datagram: Datagram) {
        self.output.push(datagram);
    }

    /// Datagrams the card has put on the wire so far.
    pub fn transmitted(&self) -> &[Datagram] {
        &self.output
    }

    /// Removes and returns everything transmitted so far.
    pub fn drain_transmitted(&mut self) -> Vec<Datagram> {
        std::mem::take(&mut self.output)
    }

    /// Oversize datagrams rejected at ingress.
    pub fn dropped_oversize(&self) -> u64 {
        self.dropped_oversize
    }

    /// Input-buffer capacity in datagrams (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Datagrams tail-dropped because the input buffer was full.
    pub fn dropped_overflow(&self) -> u64 {
        self.dropped_overflow
    }

    /// Total datagrams the processor has polled from this card — a
    /// monotonic service counter scenario engines use to pair departures
    /// with recorded arrival times.
    pub fn polled(&self) -> u64 {
        self.polled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_ipv6::NextHeader;

    fn dgram(payload: usize) -> Datagram {
        Datagram::builder("2001:db8::1".parse().unwrap(), "2001:db8::2".parse().unwrap())
            .payload(NextHeader::Udp, vec![0u8; payload])
            .build()
    }

    #[test]
    fn fifo_input_order() {
        let mut lc = LineCard::new(PortId(0));
        let a = dgram(1);
        let b = dgram(2);
        lc.receive(a.clone());
        lc.receive(b.clone());
        assert_eq!(lc.pending(), 2);
        assert_eq!(lc.poll_input(), Some(Frame::Parsed(a)));
        assert_eq!(lc.poll_input(), Some(Frame::Parsed(b)));
        assert_eq!(lc.poll_input(), None);
    }

    #[test]
    fn raw_frames_pass_the_card_untouched() {
        let mut lc = LineCard::new(PortId(0));
        let garbage = vec![0xde, 0xad, 0xbe, 0xef];
        assert!(lc.receive_raw(garbage.clone()));
        assert_eq!(lc.poll_input(), Some(Frame::Raw(garbage.clone())));
        assert_eq!(Frame::Raw(garbage.clone()).into_bytes(), garbage);
        // The MTU check still applies to raw bytes.
        let mut small = LineCard::with_mtu(PortId(1), 8);
        assert!(!small.receive_raw(vec![0u8; 9]));
        assert_eq!(small.dropped_oversize(), 1);
    }

    #[test]
    fn down_link_refuses_all_input() {
        let mut lc = LineCard::new(PortId(0));
        assert!(lc.link_up());
        lc.set_link_up(false);
        assert!(!lc.receive(dgram(1)));
        assert!(!lc.receive_raw(vec![1, 2, 3]));
        assert_eq!(lc.dropped_link_down(), 2);
        assert_eq!(lc.pending(), 0);
        lc.set_link_up(true);
        assert!(lc.receive(dgram(1)));
        assert_eq!(lc.dropped_link_down(), 2);
    }

    #[test]
    fn oversize_dropped() {
        let mut lc = LineCard::with_mtu(PortId(1), 100);
        assert!(!lc.receive(dgram(200)));
        assert!(lc.receive(dgram(10)));
        assert_eq!(lc.dropped_oversize(), 1);
        assert_eq!(lc.pending(), 1);
    }

    #[test]
    fn transmit_accumulates_and_drains() {
        let mut lc = LineCard::new(PortId(2));
        lc.transmit(dgram(1));
        lc.transmit(dgram(2));
        assert_eq!(lc.transmitted().len(), 2);
        let all = lc.drain_transmitted();
        assert_eq!(all.len(), 2);
        assert!(lc.transmitted().is_empty());
    }

    #[test]
    fn accessors() {
        let lc = LineCard::new(PortId(3));
        assert_eq!(lc.port(), PortId(3));
        assert_eq!(lc.mtu(), DEFAULT_MTU);
        assert_eq!(lc.capacity(), usize::MAX);
    }

    #[test]
    fn bounded_buffer_tail_drops() {
        let mut lc = LineCard::new(PortId(4)).with_capacity(2);
        assert!(lc.receive(dgram(1)));
        assert!(lc.receive(dgram(2)));
        assert!(!lc.receive(dgram(3)));
        assert_eq!(lc.dropped_overflow(), 2 - 1); // one drop so far
        assert!(!lc.receive(dgram(4)));
        assert_eq!(lc.dropped_overflow(), 2);
        // Draining frees the slot again.
        assert!(lc.poll_input().is_some());
        assert_eq!(lc.polled(), 1);
        assert!(lc.receive(dgram(5)));
    }
}
