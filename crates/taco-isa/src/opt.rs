//! Pre-scheduling move-level optimizations.
//!
//! The paper lists the classic TTA code improvements: "moving operands from
//! an output register to an input register without additional temporary
//! storage (*bypassing*), using the same output register or general purpose
//! register for multiple data transports (*operand sharing*), easy removing
//! of registers that are no longer in use".  This module implements the two
//! that shrink move counts directly:
//!
//! * [`bypass`] — copy propagation through general-purpose registers: the
//!   pair `x -> regs0.rN; regs0.rN -> y` becomes `x -> regs0.rN; x -> y`,
//!   making the temporary candidate for removal;
//! * [`eliminate_dead_moves`] — removes register writes that are
//!   unconditionally overwritten before any read; with a live-out policy
//!   ([`eliminate_dead_moves_with`]) it also removes writes no caller will
//!   ever observe.
//!
//! Both transformations are deliberately conservative (they never change
//! observable FU or memory state), so they can run before [`schedule`]
//! unconditionally.  [`optimize`] chains them to a fixed point.
//!
//! [`schedule`]: crate::schedule

use std::collections::BTreeSet;

use crate::fu::{FuKind, PortDir};
use crate::program::{MoveSeq, PortRef, Source};

/// Copy-propagates through general-purpose registers within basic blocks.
///
/// For a pair `x -> rN` … `rN -> y` with no intervening write to `rN`, no
/// intervening redefinition of `x`, and no intervening label or control
/// transfer, the second move's source is replaced by `x`.  When `x` is an FU
/// result, propagation additionally stops at the FU's next trigger (the
/// result register would have been overwritten).
///
/// Returns the number of moves rewritten.
pub fn bypass(seq: &mut MoveSeq) -> usize {
    let label_positions: BTreeSet<usize> = seq.labels.values().copied().collect();
    let mut rewritten = 0usize;

    for j in 0..seq.moves.len() {
        let Source::Port(src_port) = seq.moves[j].src else { continue };
        if src_port.fu.kind != FuKind::Regs {
            continue;
        }
        // Find the defining move of this register, scanning backwards while
        // the copy remains provably transparent.
        let mut replacement: Option<Source> = None;
        for i in (0..j).rev() {
            if label_positions.contains(&(i + 1)) {
                break; // block boundary between i and j
            }
            let mv = &seq.moves[i];
            if mv.is_control_transfer() {
                break;
            }
            if mv.dst == src_port {
                if mv.guard.is_none() {
                    replacement = Some(mv.src.clone());
                }
                break;
            }
            // A move between def and use that re-triggers the FU whose
            // result we'd forward kills the opportunity — handled below by
            // validating the replacement over the gap instead.
        }
        let Some(rep) = replacement else { continue };

        // Validate the replacement across the gap (def+1 .. j).
        let def =
            (0..j).rev().find(|&i| seq.moves[i].dst == src_port).expect("definition found above");
        let transparent = match &rep {
            Source::Imm(_) | Source::Label(_) => true,
            Source::Port(p) => {
                let stable = match p.dir() {
                    // A forwarded FU result must not be overwritten by a
                    // retrigger in the gap.  The check is *kind*-wide, not
                    // instance-wide: virtual instances may later fold onto
                    // one physical unit, so a trigger of any same-kind
                    // instance could alias the forwarded result register.
                    PortDir::Result => !seq.moves[def + 1..j]
                        .iter()
                        .any(|m| m.dst.fu.kind == p.fu.kind && m.dst.is_trigger()),
                    // A forwarded register must not be rewritten in the gap.
                    PortDir::Both => !seq.moves[def + 1..j].iter().any(|m| m.dst == *p),
                    PortDir::Operand | PortDir::Trigger => false,
                };
                stable
            }
        };
        if transparent && seq.moves[j].src != rep {
            seq.moves[j].src = rep;
            rewritten += 1;
        }
    }
    rewritten
}

/// Removes dead register writes, treating **every** register as live at
/// program end (registers are architectural state a caller may observe).
///
/// A write is dead when, scanning forward within its basic block, an
/// unguarded write to the same register occurs before any read of it and
/// before any label or control transfer.
///
/// Returns the number of moves removed.
pub fn eliminate_dead_moves(seq: &mut MoveSeq) -> usize {
    eliminate_dead_moves_with(seq, |_| true)
}

/// Like [`eliminate_dead_moves`], with an explicit live-out policy: a
/// register write that survives to the end of the program is kept only if
/// `live_out` returns `true` for it.  Code generators that know their ABI
/// (e.g. "only r2 carries the result") get the paper's full "easy removing
/// of registers that are no longer in use".
///
/// Returns the number of moves removed.
pub fn eliminate_dead_moves_with(seq: &mut MoveSeq, live_out: impl Fn(PortRef) -> bool) -> usize {
    let label_positions: BTreeSet<usize> = seq.labels.values().copied().collect();

    let mut removed = 0usize;
    let mut kept: Vec<bool> = vec![true; seq.moves.len()];
    #[allow(clippy::needless_range_loop)] // i indexes both moves and kept flags
    'writes: for i in 0..seq.moves.len() {
        let dst = seq.moves[i].dst;
        if dst.fu.kind != FuKind::Regs {
            continue;
        }
        for j in i + 1..seq.moves.len() {
            if label_positions.contains(&j) {
                continue 'writes; // another path may enter and read
            }
            let m2 = &seq.moves[j];
            if m2.src.port() == Some(dst) {
                continue 'writes; // read before overwrite: live
            }
            if m2.dst == dst && m2.guard.is_none() {
                kept[i] = false; // unconditionally overwritten unread
                removed += 1;
                continue 'writes;
            }
            if m2.is_control_transfer() {
                continue 'writes;
            }
        }
        // Reached program end without a read or overwrite.
        if !live_out(dst) {
            kept[i] = false;
            removed += 1;
        }
    }
    if removed == 0 {
        return 0;
    }

    // Remap label positions: a label at move index i now points at the
    // number of kept moves before i.
    let mut kept_before = vec![0usize; seq.moves.len() + 1];
    for i in 0..seq.moves.len() {
        kept_before[i + 1] = kept_before[i] + usize::from(kept[i]);
    }
    for pos in seq.labels.values_mut() {
        *pos = kept_before[*pos];
    }
    let mut keep_iter = kept.into_iter();
    seq.moves.retain(|_| keep_iter.next().unwrap());
    removed
}

/// Runs [`bypass`] and [`eliminate_dead_moves`] to a fixed point, returning
/// the total number of moves removed.  Every register is treated as live at
/// program end; see [`optimize_with`] when the ABI is known.
pub fn optimize(seq: &mut MoveSeq) -> usize {
    optimize_with(seq, |_| true)
}

/// Runs [`bypass`] and [`eliminate_dead_moves_with`] to a fixed point under
/// an explicit live-out policy, returning the total number of moves
/// removed.
pub fn optimize_with(seq: &mut MoveSeq, live_out: impl Fn(PortRef) -> bool) -> usize {
    let before = seq.len();
    loop {
        let changed = bypass(seq) + eliminate_dead_moves_with(seq, &live_out);
        if changed == 0 {
            break;
        }
    }
    before - seq.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CodeBuilder;
    use crate::fu::FuKind;
    use crate::program::Move;

    #[test]
    fn bypass_forwards_immediates() {
        let mut b = CodeBuilder::new();
        let cnt = b.fu(FuKind::Counter, 0);
        b.mv(5u32, b.reg(0));
        b.mv(b.reg(0), cnt.port("tset"));
        let mut seq = b.finish();
        assert_eq!(bypass(&mut seq), 1);
        assert_eq!(seq.moves[1].src, Source::Imm(5));
    }

    #[test]
    fn bypass_forwards_results_when_fu_idle() {
        let mut b = CodeBuilder::new();
        let cnt = b.fu(FuKind::Counter, 0);
        let sh = b.fu(FuKind::Shifter, 0);
        b.mv(cnt.port("r"), b.reg(0));
        b.mv(1u32, sh.port("amount"));
        b.mv(b.reg(0), sh.port("tshl"));
        let mut seq = b.finish();
        assert_eq!(bypass(&mut seq), 1);
        assert_eq!(seq.moves[2].src, Source::Port(cnt.port("r")));
    }

    #[test]
    fn bypass_blocked_by_retrigger() {
        let mut b = CodeBuilder::new();
        let cnt = b.fu(FuKind::Counter, 0);
        b.mv(cnt.port("r"), b.reg(0));
        b.mv(1u32, cnt.port("tinc")); // overwrites cnt result
        b.mv(b.reg(0), b.reg(1));
        let mut seq = b.finish();
        assert_eq!(bypass(&mut seq), 0);
    }

    #[test]
    fn bypass_blocked_by_register_rewrite() {
        let mut b = CodeBuilder::new();
        b.mv(1u32, b.reg(0));
        b.mv(2u32, b.reg(0));
        b.mv(b.reg(0), b.reg(1));
        let mut seq = b.finish();
        bypass(&mut seq);
        // The use must see the *second* definition.
        assert_eq!(seq.moves[2].src, Source::Imm(2));
    }

    #[test]
    fn bypass_blocked_by_label_boundary() {
        let mut b = CodeBuilder::new();
        b.mv(1u32, b.reg(0));
        b.label("target"); // jumped to from elsewhere: r0 unknown here
        b.mv(b.reg(0), b.reg(1));
        let mut seq = b.finish();
        assert_eq!(bypass(&mut seq), 0);
    }

    #[test]
    fn bypass_blocked_by_guarded_definition() {
        let mut b = CodeBuilder::new();
        let cnt = b.fu(FuKind::Counter, 0);
        b.mv_if(cnt.guard("done"), 1u32, b.reg(0)); // may not execute
        b.mv(b.reg(0), b.reg(1));
        let mut seq = b.finish();
        assert_eq!(bypass(&mut seq), 0);
    }

    #[test]
    fn dead_store_removed_and_labels_remapped() {
        let mut b = CodeBuilder::new();
        b.mv(1u32, b.reg(7)); // overwritten below before any read
        b.mv(2u32, b.reg(7));
        b.label("after");
        let cnt = b.fu(FuKind::Counter, 0);
        b.mv(b.reg(7), cnt.port("tinc"));
        b.jump("after");
        let mut seq = b.finish();
        assert_eq!(eliminate_dead_moves(&mut seq), 1);
        assert_eq!(seq.len(), 3);
        assert_eq!(seq.labels["after"], 1);
        assert_eq!(seq.moves[0].src, Source::Imm(2)); // the surviving write
    }

    #[test]
    fn registers_are_live_at_program_end_by_default() {
        let mut b = CodeBuilder::new();
        b.mv(1u32, b.reg(0));
        b.mv(b.reg(0), b.reg(1)); // r1 is an architectural output
        let mut seq = b.finish();
        assert_eq!(eliminate_dead_moves(&mut seq), 0);
        // With an explicit ABI that keeps nothing, both become removable
        // (the r1 write first, then the now-unread r0 write on a rerun).
        assert_eq!(optimize_with(&mut seq, |_| false), 2);
        assert!(seq.is_empty());
    }

    #[test]
    fn label_blocks_overwrite_analysis() {
        let mut b = CodeBuilder::new();
        b.mv(1u32, b.reg(0));
        b.label("entry"); // a jump may land here and read r0
        b.mv(2u32, b.reg(0));
        b.jump("entry");
        let mut seq = b.finish();
        assert_eq!(eliminate_dead_moves(&mut seq), 0);
    }

    #[test]
    fn guarded_overwrite_does_not_kill() {
        let mut b = CodeBuilder::new();
        let cnt = b.fu(FuKind::Counter, 0);
        b.mv(1u32, b.reg(0));
        b.mv_if(cnt.guard("done"), 2u32, b.reg(0)); // may not execute
        b.mv(b.reg(0), cnt.port("tset"));
        let mut seq = b.finish();
        assert_eq!(eliminate_dead_moves(&mut seq), 0);
    }

    #[test]
    fn fu_writes_never_removed() {
        let mut b = CodeBuilder::new();
        let cnt = b.fu(FuKind::Counter, 0);
        b.mv(1u32, cnt.port("tinc"));
        b.mv(2u32, cnt.port("stop"));
        let mut seq = b.finish();
        assert_eq!(eliminate_dead_moves(&mut seq), 0);
        assert_eq!(seq.len(), 2);
    }

    #[test]
    fn optimize_reaches_fixed_point() {
        // r0 := 5; tset := r0  — after bypass, r0 is dead and removed.
        let mut b = CodeBuilder::new();
        let cnt = b.fu(FuKind::Counter, 0);
        b.mv(5u32, b.reg(0));
        b.mv(b.reg(0), cnt.port("tset"));
        let mut seq = b.finish();
        assert_eq!(optimize_with(&mut seq, |_| false), 1);
        assert_eq!(seq.moves, vec![Move::new(5u32, cnt.port("tset"))]);
    }

    #[test]
    fn optimize_on_clean_code_is_a_noop() {
        let mut b = CodeBuilder::new();
        let cnt = b.fu(FuKind::Counter, 0);
        b.mv(5u32, cnt.port("tset"));
        let mut seq = b.finish();
        assert_eq!(optimize(&mut seq), 0);
        assert_eq!(seq.len(), 1);
    }
}
