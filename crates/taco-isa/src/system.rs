//! System-level configuration: how many cores, and what holds them
//! together.
//!
//! A [`MachineConfig`](crate::MachineConfig) describes one TACO core; a
//! [`SystemConfig`] describes the *system* built from N such cores sharing
//! the routing table through private per-core caches kept consistent by a
//! snooping coherence protocol over an on-chip interconnect.  Every field
//! is a small integer or a closed enum so a system configuration hashes,
//! compares, and serialises byte-stably — the same contract
//! `MachineConfig` honours.
//!
//! The default system is a single core with no sharing at all, and every
//! consumer treats that case as the pre-multicore evaluation path:
//! evaluating a single-core system is byte-identical to evaluating the
//! bare `MachineConfig`.
//!
//! # Examples
//!
//! ```
//! use taco_isa::{CoherenceProtocol, SystemConfig, Topology};
//!
//! let sys = SystemConfig::default();
//! assert!(sys.is_single_core());
//!
//! let quad = SystemConfig::with_cores(4)
//!     .topology(Topology::Mesh)
//!     .protocol(CoherenceProtocol::Mesi);
//! assert_eq!(quad.cores, 4);
//! assert!(!quad.is_single_core());
//! ```

use std::fmt;

/// Most cores any system configuration may carry (and the ceiling the
/// evaluation daemon advertises in its feature record).
pub const MAX_CORES: u8 = 8;

/// On-chip interconnect topology connecting the cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Topology {
    /// One shared snooping bus: every coherence transaction arbitrates for
    /// the single bus and stalls while it is busy.
    SharedBus,
    /// A switched 2D mesh NoC: transactions pay Manhattan hop latency but
    /// do not serialise against each other.
    Mesh,
}

impl Topology {
    /// Every topology, in wire order.
    pub const ALL: [Topology; 2] = [Topology::SharedBus, Topology::Mesh];

    /// The wire name (`shared-bus`, `mesh`).
    pub fn name(&self) -> &'static str {
        match self {
            Topology::SharedBus => "shared-bus",
            Topology::Mesh => "mesh",
        }
    }

    /// Looks a topology up by [`Topology::name`] (the `bus` shorthand is
    /// accepted for `shared-bus`).
    pub fn by_name(name: &str) -> Option<Topology> {
        match name {
            "shared-bus" | "bus" => Some(Topology::SharedBus),
            "mesh" => Some(Topology::Mesh),
            _ => None,
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Cache-coherence protocol run by the private table caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CoherenceProtocol {
    /// Modified/Shared/Invalid: every read miss fills Shared, so the first
    /// write to any line always pays an upgrade transaction.
    Msi,
    /// MSI plus an Exclusive state: a read miss nobody else holds fills
    /// Exclusive, and the first write upgrades silently.
    Mesi,
}

impl CoherenceProtocol {
    /// Every protocol, in wire order.
    pub const ALL: [CoherenceProtocol; 2] = [CoherenceProtocol::Msi, CoherenceProtocol::Mesi];

    /// The wire name (`msi`, `mesi`).
    pub fn name(&self) -> &'static str {
        match self {
            CoherenceProtocol::Msi => "msi",
            CoherenceProtocol::Mesi => "mesi",
        }
    }

    /// Looks a protocol up by [`CoherenceProtocol::name`].
    pub fn by_name(name: &str) -> Option<CoherenceProtocol> {
        CoherenceProtocol::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl fmt::Display for CoherenceProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Shape of each core's private table-line cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Direct-mapped line slots per core.
    pub lines: u16,
    /// Table words per cache line.
    pub line_words: u8,
}

impl CacheConfig {
    /// The default cache: 64 lines of 4 words each.
    pub fn new() -> Self {
        CacheConfig { lines: 64, line_words: 4 }
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Interconnect shape and speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InterconnectConfig {
    /// How the cores are wired together.
    pub topology: Topology,
    /// Cycles per bus transaction ([`Topology::SharedBus`]) or per mesh
    /// hop ([`Topology::Mesh`]).
    pub latency: u8,
}

impl InterconnectConfig {
    /// The default interconnect: a shared bus, 2 cycles per transaction.
    pub fn new() -> Self {
        InterconnectConfig { topology: Topology::SharedBus, latency: 2 }
    }
}

impl Default for InterconnectConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// A multi-core TACO system: N identical cores, each with a private
/// [`CacheConfig`] cache over the shared routing table, kept coherent by
/// `protocol` over `interconnect`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SystemConfig {
    /// Core count (1..=[`MAX_CORES`]).
    pub cores: u8,
    /// Private per-core table cache shape.
    pub cache: CacheConfig,
    /// On-chip interconnect.
    pub interconnect: InterconnectConfig,
    /// Coherence protocol.
    pub protocol: CoherenceProtocol,
}

impl SystemConfig {
    /// The single-core system: no sharing, no coherence traffic.  This is
    /// `Default`, and evaluating it is byte-identical to evaluating the
    /// bare per-core machine.
    pub fn single_core() -> Self {
        SystemConfig {
            cores: 1,
            cache: CacheConfig::default(),
            interconnect: InterconnectConfig::default(),
            protocol: CoherenceProtocol::Mesi,
        }
    }

    /// A `cores`-core system with the default cache, interconnect and
    /// protocol.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or above [`MAX_CORES`].
    pub fn with_cores(cores: u8) -> Self {
        assert!((1..=MAX_CORES).contains(&cores), "cores must be 1..={MAX_CORES}");
        SystemConfig { cores, ..Self::single_core() }
    }

    /// Returns a copy with `topology` (keeping the latency).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.interconnect.topology = topology;
        self
    }

    /// Returns a copy with `protocol`.
    pub fn protocol(mut self, protocol: CoherenceProtocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Returns a copy with the given cache shape.
    pub fn cache(mut self, lines: u16, line_words: u8) -> Self {
        self.cache = CacheConfig { lines, line_words };
        self
    }

    /// Whether this system has exactly one core (no coherence traffic is
    /// possible, whatever the other fields say).
    pub fn is_single_core(&self) -> bool {
        self.cores == 1
    }

    /// Whether this is exactly the default system — the predicate the wire
    /// codec uses to keep single-core configurations in the flat
    /// (pre-multicore) JSON form.
    pub fn is_default(&self) -> bool {
        *self == Self::single_core()
    }

    /// A short suffix such as `4c-mesh-mesi` appended to labels of
    /// multi-core systems; empty for the default system.
    pub fn label_suffix(&self) -> String {
        if self.is_default() {
            String::new()
        } else {
            format!(" {}c-{}-{}", self.cores, self.interconnect.topology, self.protocol)
        }
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::single_core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_single_core() {
        let sys = SystemConfig::default();
        assert!(sys.is_single_core());
        assert!(sys.is_default());
        assert_eq!(sys.cores, 1);
        assert_eq!(sys.label_suffix(), "");
    }

    #[test]
    fn builders_compose() {
        let sys = SystemConfig::with_cores(4)
            .topology(Topology::Mesh)
            .protocol(CoherenceProtocol::Msi)
            .cache(128, 8);
        assert_eq!(sys.cores, 4);
        assert_eq!(sys.interconnect.topology, Topology::Mesh);
        assert_eq!(sys.protocol, CoherenceProtocol::Msi);
        assert_eq!(sys.cache.lines, 128);
        assert_eq!(sys.cache.line_words, 8);
        assert!(!sys.is_default());
        assert_eq!(sys.label_suffix(), " 4c-mesh-msi");
    }

    #[test]
    fn single_core_with_explicit_fields_is_not_default() {
        let sys = SystemConfig::with_cores(1).topology(Topology::Mesh);
        assert!(sys.is_single_core());
        assert!(!sys.is_default());
    }

    #[test]
    #[should_panic(expected = "cores must be")]
    fn zero_cores_rejected() {
        let _ = SystemConfig::with_cores(0);
    }

    #[test]
    #[should_panic(expected = "cores must be")]
    fn too_many_cores_rejected() {
        let _ = SystemConfig::with_cores(MAX_CORES + 1);
    }

    #[test]
    fn names_round_trip() {
        for t in Topology::ALL {
            assert_eq!(Topology::by_name(t.name()), Some(t));
        }
        assert_eq!(Topology::by_name("bus"), Some(Topology::SharedBus));
        assert_eq!(Topology::by_name("ring"), None);
        for p in CoherenceProtocol::ALL {
            assert_eq!(CoherenceProtocol::by_name(p.name()), Some(p));
        }
        assert_eq!(CoherenceProtocol::by_name("moesi"), None);
    }
}
