//! Binary instruction-word encoding.
//!
//! "TTAs are in essence one instruction processors … the instruction word
//! of any TTA processor consists mostly of source and destination
//! addresses."  This module makes that sentence concrete: it numbers every
//! socket (FU port) and guard signal of a [`MachineConfig`], packs each bus
//! slot into the minimal field layout, and measures how wide the resulting
//! instruction word is — the quantity that sizes the program memory in the
//! physical model.
//!
//! Slot layout (least-significant first):
//!
//! | field | width | meaning |
//! |---|---|---|
//! | `dst` | `socket_bits` | destination socket id |
//! | `src` | max(`socket_bits`, `imm_bits`) | source socket id, or literal-pool index |
//! | `is_imm` | 1 | source is a literal-pool index |
//! | `guard` | `guard_bits` | 0 = unguarded, else guard id + 1 |
//! | `negate` | 1 | invert the guard |
//! | `valid` | 1 | slot carries a move |
//!
//! 32-bit immediates live in a **literal pool** appended to the image (the
//! classic TTA long-immediate mechanism), so the slot stays narrow — a
//! one-bus paper configuration encodes to a 17-bit instruction word.
//!
//! [`encode`] and [`decode`] round-trip exactly (labels must be resolved
//! first; jump targets are immediates like any other).

use std::fmt;

use crate::fu::{FuKind, FuRef};
use crate::machine::MachineConfig;
use crate::program::{Guard, Instruction, Move, PortRef, Program, Source};

/// Stable numbering of the sockets and guard signals of one configuration.
#[derive(Debug, Clone)]
pub struct SocketMap {
    sockets: Vec<PortRef>,
    guards: Vec<(FuRef, &'static str)>,
}

impl SocketMap {
    /// Enumerates `config`'s sockets (every port of every FU instance, in
    /// kind/instance/port order) and guard signals.
    pub fn new(config: &MachineConfig) -> Self {
        let mut sockets = Vec::new();
        let mut guards = Vec::new();
        for kind in FuKind::ALL {
            for index in 0..config.fu_count(kind) {
                let fu = FuRef::new(kind, index);
                for port in kind.ports() {
                    sockets.push(PortRef { fu, port: port.name });
                }
                for signal in kind.guards() {
                    guards.push((fu, *signal));
                }
            }
        }
        SocketMap { sockets, guards }
    }

    /// Number of sockets.
    pub fn socket_count(&self) -> usize {
        self.sockets.len()
    }

    /// Bits needed for a socket id.
    pub fn socket_bits(&self) -> u32 {
        bits_for(self.sockets.len() as u64 - 1)
    }

    /// Bits needed for the guard field (including the "unguarded" code 0).
    pub fn guard_bits(&self) -> u32 {
        bits_for(self.guards.len() as u64)
    }

    /// The id of a socket.
    pub fn socket_id(&self, port: &PortRef) -> Option<u64> {
        self.sockets.iter().position(|p| p == port).map(|i| i as u64)
    }

    /// The socket with a given id.
    pub fn socket(&self, id: u64) -> Option<PortRef> {
        self.sockets.get(id as usize).copied()
    }

    /// The id of a guard signal.
    pub fn guard_id(&self, fu: FuRef, signal: &str) -> Option<u64> {
        self.guards.iter().position(|(f, s)| *f == fu && *s == signal).map(|i| i as u64)
    }

    /// The guard signal with a given id.
    pub fn guard(&self, id: u64) -> Option<(FuRef, &'static str)> {
        self.guards.get(id as usize).copied()
    }
}

fn bits_for(max_value: u64) -> u32 {
    (64 - max_value.leading_zeros()).max(1)
}

/// A program packed into instruction words plus a literal pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedProgram {
    /// One `u64` per bus slot, row-major (`instructions × buses`); the
    /// meaningful low bits per slot are [`EncodedProgram::slot_bits`].
    pub slots: Vec<u64>,
    /// The 32-bit literals referenced by immediate slots.
    pub literals: Vec<u32>,
    /// Buses per instruction.
    pub buses: u8,
    /// Width of one slot in bits.
    pub slot_bits: u32,
}

impl EncodedProgram {
    /// Width of one full instruction word in bits (`buses × slot_bits`).
    pub fn instruction_bits(&self) -> u32 {
        u32::from(self.buses) * self.slot_bits
    }

    /// Number of instructions.
    pub fn instruction_count(&self) -> usize {
        self.slots.len() / usize::from(self.buses)
    }

    /// Total image size in bits: program store plus literal pool.
    pub fn total_bits(&self) -> u64 {
        self.instruction_count() as u64 * u64::from(self.instruction_bits())
            + self.literals.len() as u64 * 32
    }
}

impl fmt::Display for EncodedProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instructions x {} bits + {} literals ({} bytes total)",
            self.instruction_count(),
            self.instruction_bits(),
            self.literals.len(),
            self.total_bits().div_ceil(8)
        )
    }
}

/// Why a program could not be encoded or decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodeError {
    /// A move still carries an unresolved label.
    UnresolvedLabel(String),
    /// A move references a socket the configuration lacks.
    UnknownSocket(PortRef),
    /// A guard references a signal the configuration lacks.
    UnknownGuard(FuRef),
    /// An instruction is wider than the configuration's bus count.
    TooManySlots {
        /// Offending instruction index.
        instruction: usize,
    },
    /// A decoded field held an out-of-range id.
    BadField {
        /// Slot index in the image.
        slot: usize,
        /// Field name.
        field: &'static str,
    },
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::UnresolvedLabel(l) => write!(f, "unresolved label {l:?}"),
            CodeError::UnknownSocket(p) => write!(f, "no socket for {p}"),
            CodeError::UnknownGuard(g) => write!(f, "no guard signals on {g}"),
            CodeError::TooManySlots { instruction } => {
                write!(f, "instruction {instruction} is wider than the machine")
            }
            CodeError::BadField { slot, field } => {
                write!(f, "slot {slot} holds an out-of-range {field}")
            }
        }
    }
}

impl std::error::Error for CodeError {}

/// Encodes a label-resolved program for `config`.
///
/// # Errors
///
/// [`CodeError::UnresolvedLabel`] / [`CodeError::UnknownSocket`] /
/// [`CodeError::UnknownGuard`] / [`CodeError::TooManySlots`] for programs
/// that do not fit the configuration.
pub fn encode(prog: &Program, config: &MachineConfig) -> Result<EncodedProgram, CodeError> {
    let map = SocketMap::new(config);
    let socket_bits = map.socket_bits();
    let guard_bits = map.guard_bits();
    let buses = config.buses();

    let mut literals: Vec<u32> = Vec::new();
    let mut slots = Vec::new();
    // src field must hold socket ids and literal indices alike.
    let mut imm_count = 0u64;
    for ins in &prog.instructions {
        for slot in ins.slots.iter().flatten() {
            if matches!(slot.src, Source::Imm(_)) {
                imm_count += 1;
            }
        }
    }
    let src_bits = socket_bits.max(bits_for(imm_count.max(1) - u64::from(imm_count > 0)));

    let slot_bits = socket_bits + src_bits + 1 + guard_bits + 1 + 1;

    for (idx, ins) in prog.instructions.iter().enumerate() {
        if ins.slots.len() > usize::from(buses) {
            return Err(CodeError::TooManySlots { instruction: idx });
        }
        for b in 0..usize::from(buses) {
            let word = match ins.slots.get(b).and_then(|s| s.as_ref()) {
                None => 0u64, // valid bit clear
                Some(mv) => {
                    let dst = map.socket_id(&mv.dst).ok_or(CodeError::UnknownSocket(mv.dst))?;
                    let (is_imm, src) = match &mv.src {
                        Source::Port(p) => {
                            (0u64, map.socket_id(p).ok_or(CodeError::UnknownSocket(*p))?)
                        }
                        Source::Imm(v) => {
                            // Pool deduplicates literals.
                            let i = literals.iter().position(|x| x == v).unwrap_or_else(|| {
                                literals.push(*v);
                                literals.len() - 1
                            });
                            (1u64, i as u64)
                        }
                        Source::Label(l) => return Err(CodeError::UnresolvedLabel(l.clone())),
                    };
                    let (guard, negate) = match &mv.guard {
                        None => (0u64, 0u64),
                        Some(g) => {
                            let id = map
                                .guard_id(g.fu, g.signal)
                                .ok_or(CodeError::UnknownGuard(g.fu))?;
                            (id + 1, u64::from(g.negate))
                        }
                    };
                    let mut w = dst;
                    w |= src << socket_bits;
                    w |= is_imm << (socket_bits + src_bits);
                    w |= guard << (socket_bits + src_bits + 1);
                    w |= negate << (socket_bits + src_bits + 1 + guard_bits);
                    w |= 1u64 << (socket_bits + src_bits + 1 + guard_bits + 1);
                    w
                }
            };
            slots.push(word);
        }
    }

    Ok(EncodedProgram { slots, literals, buses, slot_bits })
}

/// Decodes an image back into a program (label-free: jumps stay immediate).
///
/// # Errors
///
/// [`CodeError::BadField`] when an id falls outside the configuration's
/// socket/guard/literal spaces.
pub fn decode(enc: &EncodedProgram, config: &MachineConfig) -> Result<Program, CodeError> {
    let map = SocketMap::new(config);
    let socket_bits = map.socket_bits();
    let guard_bits = map.guard_bits();
    let src_bits = enc.slot_bits - socket_bits - 1 - guard_bits - 1 - 1;

    let field = |w: u64, shift: u32, bits: u32| (w >> shift) & ((1u64 << bits) - 1);

    let mut prog = Program::new();
    for chunk in enc.slots.chunks(usize::from(enc.buses)) {
        let mut ins = Instruction::empty(enc.buses);
        for (b, &w) in chunk.iter().enumerate() {
            let valid = field(w, socket_bits + src_bits + 1 + guard_bits + 1, 1);
            if valid == 0 {
                continue;
            }
            let slot_index = prog.instructions.len() * usize::from(enc.buses) + b;
            let dst = map
                .socket(field(w, 0, socket_bits))
                .ok_or(CodeError::BadField { slot: slot_index, field: "dst" })?;
            let src_raw = field(w, socket_bits, src_bits);
            let is_imm = field(w, socket_bits + src_bits, 1) == 1;
            let src = if is_imm {
                let v = enc
                    .literals
                    .get(src_raw as usize)
                    .ok_or(CodeError::BadField { slot: slot_index, field: "literal" })?;
                Source::Imm(*v)
            } else {
                Source::Port(
                    map.socket(src_raw)
                        .ok_or(CodeError::BadField { slot: slot_index, field: "src" })?,
                )
            };
            let guard_raw = field(w, socket_bits + src_bits + 1, guard_bits);
            let negate = field(w, socket_bits + src_bits + 1 + guard_bits, 1) == 1;
            let guard = if guard_raw == 0 {
                None
            } else {
                let (fu, signal) = map
                    .guard(guard_raw - 1)
                    .ok_or(CodeError::BadField { slot: slot_index, field: "guard" })?;
                Some(Guard { fu, signal, negate })
            };
            ins.slots[b] = Some(Move { src, dst, guard });
        }
        prog.instructions.push(ins);
    }
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;
    use crate::sched::schedule;

    fn sample_program(buses: u8) -> Program {
        let mut b = crate::builder::CodeBuilder::new();
        let cnt = b.fu(FuKind::Counter, 0);
        let cmp = b.fu(FuKind::Comparator, 0);
        b.mv(0u32, cnt.port("tset"));
        b.mv(5u32, cnt.port("stop"));
        b.label("loop");
        b.mv(1u32, cnt.port("tinc"));
        b.mv(cnt.port("r"), cmp.port("t"));
        b.jump_unless(cnt.guard("done"), "loop");
        let mut prog = schedule(&b.finish(), &MachineConfig::new(buses));
        prog.resolve_labels().expect("labels defined");
        prog
    }

    #[test]
    fn socket_map_is_dense_and_invertible() {
        let config = MachineConfig::three_bus_three_fu();
        let map = SocketMap::new(&config);
        assert_eq!(map.socket_count() as u32, config.total_sockets());
        for id in 0..map.socket_count() as u64 {
            let port = map.socket(id).expect("dense");
            assert_eq!(map.socket_id(&port), Some(id));
        }
        assert!(map.socket(map.socket_count() as u64).is_none());
    }

    #[test]
    fn round_trip_exactly() {
        for buses in [1u8, 3] {
            let config = MachineConfig::new(buses);
            let prog = sample_program(buses);
            let enc = encode(&prog, &config).expect("encodes");
            let dec = decode(&enc, &config).expect("decodes");
            // Decoded programs are label-free; compare instructions only.
            assert_eq!(dec.instructions, prog.instructions, "{buses} buses");
        }
    }

    #[test]
    fn instruction_word_is_mostly_addresses() {
        // The paper's observation, checked numerically: on the one-bus
        // configuration, source+destination fields dominate the slot.
        let config = MachineConfig::one_bus_one_fu();
        let map = SocketMap::new(&config);
        let enc = encode(&sample_program(1), &config).expect("encodes");
        let addr_bits = map.socket_bits() * 2; // dst + (socket-sized src)
        assert!(
            f64::from(addr_bits) > 0.6 * f64::from(enc.slot_bits),
            "addresses {addr_bits} of {} slot bits",
            enc.slot_bits
        );
        // And the whole word is compact: tens of bits, not hundreds.
        assert!(enc.instruction_bits() < 32, "{}", enc.instruction_bits());
    }

    #[test]
    fn literal_pool_deduplicates() {
        let mut prog = asm::parse("7 -> cnt0.tset\n7 -> cnt0.stop\n9 -> cnt0.tadd\n").unwrap();
        prog.resolve_labels().unwrap();
        let enc = encode(&prog, &MachineConfig::new(1)).expect("encodes");
        assert_eq!(enc.literals, vec![7, 9]);
    }

    #[test]
    fn empty_slots_stay_empty() {
        let mut prog = asm::parse("... | 1 -> cnt0.tinc | ...\n").unwrap();
        prog.resolve_labels().unwrap();
        let config = MachineConfig::new(3);
        let enc = encode(&prog, &config).expect("encodes");
        let dec = decode(&enc, &config).expect("decodes");
        assert!(dec.instructions[0].slots[0].is_none());
        assert!(dec.instructions[0].slots[1].is_some());
        assert!(dec.instructions[0].slots[2].is_none());
    }

    #[test]
    fn unresolved_labels_rejected() {
        let prog = asm::parse("@nowhere -> nc0.pc\n").unwrap();
        assert!(matches!(
            encode(&prog, &MachineConfig::new(1)),
            Err(CodeError::UnresolvedLabel(_))
        ));
    }

    #[test]
    fn missing_fu_rejected() {
        let mut prog = asm::parse("1 -> mtch2.t\n").unwrap();
        prog.resolve_labels().unwrap();
        assert!(matches!(encode(&prog, &MachineConfig::new(1)), Err(CodeError::UnknownSocket(_))));
    }

    #[test]
    fn wide_instruction_rejected() {
        let mut prog = asm::parse("1 -> regs0.r0 | 2 -> regs0.r1\n").unwrap();
        prog.resolve_labels().unwrap();
        assert!(matches!(
            encode(&prog, &MachineConfig::new(1)),
            Err(CodeError::TooManySlots { instruction: 0 })
        ));
    }

    #[test]
    fn corrupted_image_decodes_to_error_not_panic() {
        let config = MachineConfig::new(1);
        let mut enc = encode(&sample_program(1), &config).expect("encodes");
        // Blast a slot with all-ones: valid bit set, ids out of range.
        enc.slots[0] = u64::MAX;
        assert!(matches!(decode(&enc, &config), Err(CodeError::BadField { .. })));
    }

    #[test]
    fn image_size_accounting() {
        let config = MachineConfig::new(3);
        let enc = encode(&sample_program(3), &config).expect("encodes");
        assert_eq!(enc.instruction_count(), enc.slots.len() / 3);
        let expect = enc.instruction_count() as u64 * u64::from(enc.instruction_bits())
            + enc.literals.len() as u64 * 32;
        assert_eq!(enc.total_bits(), expect);
        assert!(enc.to_string().contains("instructions"));
    }
}
