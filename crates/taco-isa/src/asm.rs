//! A two-way textual assembly format for TACO programs.
//!
//! One line per instruction word; bus slots separated by `|`; `...` marks an
//! idle bus.  Moves are written `src -> dst`, optionally prefixed by a guard
//! (`?fu.sig` executes when the signal is high, `!fu.sig` when low).
//! Sources are immediates (`42`, `0x2a`), label references (`@loop`), or FU
//! ports (`mmu0.r`).  A line ending in `:` defines a label; `;` starts a
//! comment.
//!
//! ```text
//! ; count to three
//!         0 -> cnt0.tset  | 3 -> cnt0.stop
//! loop:   1 -> cnt0.tinc
//!         !cnt0.done @loop -> nc0.pc
//! ```
//!
//! [`parse`] and [`print()`](print()) round-trip: `parse(&print(&p))` reproduces `p`.

use std::error::Error;
use std::fmt;

use crate::fu::FuKind;
use crate::program::{Guard, Instruction, Move, PortRef, Program, Source};

/// Error produced when assembly text cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError { line, message: message.into() }
}

/// Parses assembly text into a program (labels are *not* resolved — call
/// [`Program::resolve_labels`] before simulation).
///
/// # Errors
///
/// Returns an [`AsmError`] with the line number for syntax errors, unknown
/// FU names or ports, direction violations (reading a trigger, writing a
/// result) and duplicate labels.
pub fn parse(text: &str) -> Result<Program, AsmError> {
    let mut prog = Program::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        // Leading label? (may share a line with an instruction)
        let rest = if let Some(colon) = line.find(':') {
            let (name, rest) = line.split_at(colon);
            let name = name.trim();
            if !name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                if prog.labels.insert(name.to_string(), prog.instructions.len()).is_some() {
                    return Err(err(lineno, format!("label {name:?} defined twice")));
                }
                rest[1..].trim()
            } else {
                line
            }
        } else {
            line
        };
        if rest.is_empty() {
            continue;
        }
        let slots =
            rest.split('|').map(|s| parse_slot(s.trim(), lineno)).collect::<Result<Vec<_>, _>>()?;
        prog.instructions.push(Instruction { slots });
    }
    Ok(prog)
}

fn parse_slot(s: &str, line: usize) -> Result<Option<Move>, AsmError> {
    if s == "..." || s.is_empty() {
        return Ok(None);
    }
    let mut s = s;
    let mut guard = None;
    if let Some(negate) = match s.chars().next() {
        Some('?') => Some(false),
        Some('!') => Some(true),
        _ => None,
    } {
        let (gtok, rest) = s[1..]
            .split_once(char::is_whitespace)
            .ok_or_else(|| err(line, "guard must be followed by a move"))?;
        guard = Some(parse_guard(gtok, negate, line)?);
        s = rest.trim();
    }
    let (src, dst) =
        s.split_once("->").ok_or_else(|| err(line, format!("expected `src -> dst` in {s:?}")))?;
    let src = parse_source(src.trim(), line)?;
    let dst = parse_port(dst.trim(), line)?;
    if !dst.is_writable() {
        return Err(err(line, format!("{dst} is not writable")));
    }
    Ok(Some(Move { src, dst, guard }))
}

fn parse_guard(tok: &str, negate: bool, line: usize) -> Result<Guard, AsmError> {
    let (fu, signal) =
        tok.split_once('.').ok_or_else(|| err(line, format!("guard {tok:?} must be fu.signal")))?;
    let (kind, index) = parse_fu(fu, line)?;
    if !kind.has_guard(signal) {
        return Err(err(line, format!("{kind} drives no guard signal {signal:?}")));
    }
    Ok(Guard::new(kind, index, signal, negate))
}

fn parse_source(tok: &str, line: usize) -> Result<Source, AsmError> {
    if let Some(label) = tok.strip_prefix('@') {
        if label.is_empty() {
            return Err(err(line, "empty label reference"));
        }
        return Ok(Source::Label(label.to_string()));
    }
    if let Some(hex) = tok.strip_prefix("0x") {
        return u32::from_str_radix(hex, 16)
            .map(Source::Imm)
            .map_err(|_| err(line, format!("bad hex immediate {tok:?}")));
    }
    if tok.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return tok
            .parse::<u32>()
            .map(Source::Imm)
            .map_err(|_| err(line, format!("bad immediate {tok:?}")));
    }
    let p = parse_port(tok, line)?;
    if !p.is_readable() {
        return Err(err(line, format!("{p} is not readable")));
    }
    Ok(Source::Port(p))
}

fn parse_port(tok: &str, line: usize) -> Result<PortRef, AsmError> {
    let (fu, port) =
        tok.split_once('.').ok_or_else(|| err(line, format!("expected fu.port, got {tok:?}")))?;
    let (kind, index) = parse_fu(fu, line)?;
    let spec =
        kind.find_port(port).ok_or_else(|| err(line, format!("{kind} has no port {port:?}")))?;
    Ok(PortRef::new(kind, index, spec.name))
}

fn parse_fu(tok: &str, line: usize) -> Result<(FuKind, u8), AsmError> {
    let digits_at = tok
        .find(|c: char| c.is_ascii_digit())
        .ok_or_else(|| err(line, format!("fu reference {tok:?} lacks an instance index")))?;
    let (prefix, idx) = tok.split_at(digits_at);
    let kind = FuKind::from_asm_prefix(prefix)
        .ok_or_else(|| err(line, format!("unknown functional unit {prefix:?}")))?;
    let index: u8 = idx.parse().map_err(|_| err(line, format!("bad fu index {idx:?}")))?;
    Ok((kind, index))
}

/// Prints a program in the format [`parse`] accepts.
///
/// This is [`Program`]'s `Display` implementation, provided as a free
/// function for symmetry with [`parse`].
pub fn print(prog: &Program) -> String {
    prog.to_string()
}

/// Disassembles a *label-resolved* program back into symbolic form: every
/// jump immediate becomes an `@L<target>` reference with a matching label
/// definition, so the output is human-readable and re-assembles to the
/// same control flow.
///
/// Jumps to exactly `instructions.len()` (the clean-halt idiom) get an
/// `L<len>` label after the last instruction.
pub fn disassemble(prog: &Program) -> String {
    use std::collections::BTreeSet;

    // Collect jump targets.
    let mut targets: BTreeSet<usize> = BTreeSet::new();
    for ins in &prog.instructions {
        for mv in ins.moves() {
            if mv.is_control_transfer() {
                if let crate::program::Source::Imm(t) = mv.src {
                    targets.insert(t as usize);
                }
            }
        }
    }

    let mut symbolic = prog.clone();
    symbolic.labels.clear();
    for &t in &targets {
        symbolic.labels.insert(format!("L{t}"), t);
    }
    for ins in &mut symbolic.instructions {
        for mv in ins.slots.iter_mut().flatten() {
            if mv.is_control_transfer() {
                if let crate::program::Source::Imm(t) = mv.src {
                    if targets.contains(&(t as usize)) {
                        mv.src = crate::program::Source::Label(format!("L{t}"));
                    }
                }
            }
        }
    }
    symbolic.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fu::FuKind;

    #[test]
    fn parse_minimal_program() {
        let prog = parse(
            "; comment only\n\
             start:\n\
             \t5 -> cnt0.stop\n\
             \tcnt0.r -> regs0.r3 | 0x1f -> mask0.mask\n\
             \t!cnt0.done @start -> nc0.pc\n",
        )
        .unwrap();
        assert_eq!(prog.instructions.len(), 3);
        assert_eq!(prog.labels["start"], 0);
        assert_eq!(prog.instructions[1].move_count(), 2);
        let guarded = prog.instructions[2].slots[0].as_ref().unwrap();
        assert!(guarded.guard.as_ref().unwrap().negate);
        assert_eq!(guarded.src, Source::Label("start".into()));
    }

    #[test]
    fn round_trip_through_print() {
        let text =
            "loop:\n  0x5 -> cnt0.stop | ... | cnt1.r -> cmp0.t\n  ?cmp0.eq @loop -> nc0.pc\n";
        let prog = parse(text).unwrap();
        let printed = print(&prog);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(prog, reparsed);
    }

    #[test]
    fn empty_slots_syntax() {
        let prog = parse("... | 1 -> cnt0.tinc | ...").unwrap();
        let ins = &prog.instructions[0];
        assert_eq!(ins.slots.len(), 3);
        assert!(ins.slots[0].is_none());
        assert!(ins.slots[1].is_some());
        assert!(ins.slots[2].is_none());
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = parse("1 -> cnt0.tinc\n2 -> nosuch0.t\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("nosuch"));
    }

    #[test]
    fn direction_violations_rejected() {
        // Reading a trigger port.
        assert!(parse("cnt0.tinc -> regs0.r0").unwrap_err().message.contains("not readable"));
        // Writing a result port.
        assert!(parse("1 -> cnt0.r").unwrap_err().message.contains("not writable"));
    }

    #[test]
    fn bad_guard_rejected() {
        let e = parse("?csum0.match 1 -> cnt0.tinc").unwrap_err();
        assert!(e.message.contains("guard"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = parse("x:\n1 -> cnt0.tinc\nx:\n").unwrap_err();
        assert!(e.message.contains("twice"));
    }

    #[test]
    fn immediates_dec_and_hex() {
        let prog = parse("42 -> cnt0.stop\n0xff -> cnt0.stop\n").unwrap();
        assert_eq!(prog.instructions[0].slots[0].as_ref().unwrap().src, Source::Imm(42));
        assert_eq!(prog.instructions[1].slots[0].as_ref().unwrap().src, Source::Imm(255));
    }

    #[test]
    fn bad_immediate_rejected() {
        assert!(parse("0xzz -> cnt0.stop").is_err());
        assert!(parse("9999999999999 -> cnt0.stop").is_err());
    }

    #[test]
    fn label_and_move_share_a_line() {
        let prog = parse("go: 1 -> cnt0.tinc").unwrap();
        assert_eq!(prog.labels["go"], 0);
        assert_eq!(prog.instructions.len(), 1);
    }

    #[test]
    fn disassemble_synthesizes_labels_and_round_trips() {
        let mut prog = parse(
            "start:\n  0 -> cnt0.tset | 5 -> cnt0.stop\nloop:\n  1 -> cnt0.tinc\n  !cnt0.done @loop -> nc0.pc\n  @end -> nc0.pc\nend:\n",
        )
        .unwrap();
        prog.resolve_labels().unwrap();
        let text = disassemble(&prog);
        assert!(text.contains("L1:"), "{text}");
        assert!(text.contains("@L1 -> nc0.pc"), "{text}");
        assert!(text.contains("L4:"), "clean-halt target labelled: {text}");
        // Round trip: same control flow after re-assembly.
        let mut again = parse(&text).unwrap();
        again.resolve_labels().unwrap();
        assert_eq!(again.instructions, prog.instructions);
    }

    #[test]
    fn disassemble_of_straight_line_code_is_plain() {
        let mut prog = parse("1 -> regs0.r0\n2 -> regs0.r1\n").unwrap();
        prog.resolve_labels().unwrap();
        let text = disassemble(&prog);
        assert!(!text.contains('@'), "{text}");
        assert!(!text.contains("L0"), "{text}");
    }

    #[test]
    fn every_fu_kind_parses() {
        for k in FuKind::ALL {
            for p in k.ports() {
                let tok = format!("{}0.{}", k.asm_prefix(), p.name);
                let parsed = parse_port(&tok, 1).unwrap();
                assert_eq!(parsed.fu.kind, k);
                assert_eq!(parsed.port, p.name);
            }
        }
    }
}
