//! The TACO functional-unit catalogue: kinds, ports and guard signals.
//!
//! A TACO processor (paper Fig. 2) is assembled from protocol-processing
//! functional units connected to an interconnection network of buses.  Each
//! FU exposes three kinds of register to the network:
//!
//! * **operand** registers — written by moves, latched when the FU triggers;
//! * **trigger** registers — writing one starts the FU's operation (TACO FUs
//!   complete in a single clock cycle);
//! * **result** registers — readable by moves one cycle after the trigger.
//!
//! In addition some FUs drive 1-bit **guard signals** wired directly to the
//! interconnection network controller (the paper's Matcher, Comparer and
//! Counter "result signals"); any move can be predicated on a guard.
//!
//! This module is pure metadata — the behavioural models live in
//! `taco-sim` — so that the assembler and scheduler can validate programs
//! without pulling in the simulator.

use std::fmt;
use std::str::FromStr;

/// The functional-unit types of the TACO IPv6 router (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FuKind {
    /// Bitstring comparison under a mask; drives the `match` guard.
    Matcher,
    /// Magnitude comparison against a reference; drives `eq`/`lt`/`gt`.
    Comparator,
    /// Arithmetic (inc/dec/add/sub) and counting toward a stop value;
    /// drives `done`/`zero`.
    Counter,
    /// RFC 1071 Internet-checksum accumulator.
    Checksum,
    /// Logical shifter (doubles as multiply/divide by powers of two).
    Shifter,
    /// Sets bits of a value according to a mask (bitfield insert).
    Masker,
    /// Memory management unit: the port into data memory.
    Mmu,
    /// Routing Table Unit: the dedicated lookup FU (CAM-backed in the
    /// paper's third case).
    Rtu,
    /// Local Information Unit: the router's own addresses and port count.
    Liu,
    /// Input preprocessing unit: scans line-card input buffers, queues
    /// pointers to pending datagrams; drives the `pending` guard.
    Ippu,
    /// Output postprocessing unit: moves finished datagrams to line-card
    /// output buffers.
    Oppu,
    /// General-purpose register file (16 × 32-bit).
    Regs,
    /// The interconnection network controller itself: its `pc` port is the
    /// jump target register.
    Nc,
}

/// Direction of a port as seen from the interconnection network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Operand register: written by moves, latched on trigger.
    Operand,
    /// Trigger register: writing starts the operation.
    Trigger,
    /// Result register: read by moves.
    Result,
    /// Readable and writable with no side effect (register file).
    Both,
}

/// Metadata for one FU port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortSpec {
    /// Port name as written in assembly (`mmu0.addr` → `"addr"`).
    pub name: &'static str,
    /// Direction/class of the port.
    pub dir: PortDir,
}

const fn port(name: &'static str, dir: PortDir) -> PortSpec {
    PortSpec { name, dir }
}

/// Names of the sixteen general-purpose registers.
pub const GP_REGISTERS: [&str; 16] = [
    "r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11", "r12", "r13", "r14",
    "r15",
];

impl FuKind {
    /// Every FU kind, in display order.
    pub const ALL: [FuKind; 13] = [
        FuKind::Matcher,
        FuKind::Comparator,
        FuKind::Counter,
        FuKind::Checksum,
        FuKind::Shifter,
        FuKind::Masker,
        FuKind::Mmu,
        FuKind::Rtu,
        FuKind::Liu,
        FuKind::Ippu,
        FuKind::Oppu,
        FuKind::Regs,
        FuKind::Nc,
    ];

    /// The kinds the paper replicates when exploring configurations
    /// ("3 matchers, 3 counters and 3 comparers").
    pub const REPLICABLE: [FuKind; 3] = [FuKind::Matcher, FuKind::Comparator, FuKind::Counter];

    /// The ports this FU kind exposes to the interconnection network.
    pub fn ports(&self) -> &'static [PortSpec] {
        use PortDir::{Operand, Result, Trigger};
        const MATCHER: [PortSpec; 4] =
            [port("mask", Operand), port("refv", Operand), port("t", Trigger), port("r", Result)];
        const COMPARATOR: [PortSpec; 3] =
            [port("refv", Operand), port("t", Trigger), port("r", Result)];
        const COUNTER: [PortSpec; 7] = [
            port("stop", Operand),
            port("tset", Trigger),
            port("tinc", Trigger),
            port("tdec", Trigger),
            port("tadd", Trigger),
            port("tsub", Trigger),
            port("r", Result),
        ];
        const CHECKSUM: [PortSpec; 3] =
            [port("tclr", Trigger), port("tadd", Trigger), port("r", Result)];
        const SHIFTER: [PortSpec; 4] = [
            port("amount", Operand),
            port("tshl", Trigger),
            port("tshr", Trigger),
            port("r", Result),
        ];
        const MASKER: [PortSpec; 4] =
            [port("mask", Operand), port("value", Operand), port("t", Trigger), port("r", Result)];
        const MMU: [PortSpec; 4] = [
            port("addr", Operand),
            port("tread", Trigger),
            port("twrite", Trigger),
            port("r", Result),
        ];
        const RTU: [PortSpec; 6] = [
            port("k0", Operand),
            port("k1", Operand),
            port("k2", Operand),
            port("t", Trigger),
            port("iface", Result),
            port("nh", Result),
        ];
        const LIU: [PortSpec; 2] = [port("t", Trigger), port("r", Result)];
        const IPPU: [PortSpec; 3] =
            [port("tpop", Trigger), port("ptr", Result), port("iface", Result)];
        const OPPU: [PortSpec; 2] = [port("iface", Operand), port("t", Trigger)];
        const REGS: [PortSpec; 16] = [
            port("r0", PortDir::Both),
            port("r1", PortDir::Both),
            port("r2", PortDir::Both),
            port("r3", PortDir::Both),
            port("r4", PortDir::Both),
            port("r5", PortDir::Both),
            port("r6", PortDir::Both),
            port("r7", PortDir::Both),
            port("r8", PortDir::Both),
            port("r9", PortDir::Both),
            port("r10", PortDir::Both),
            port("r11", PortDir::Both),
            port("r12", PortDir::Both),
            port("r13", PortDir::Both),
            port("r14", PortDir::Both),
            port("r15", PortDir::Both),
        ];
        const NC: [PortSpec; 1] = [port("pc", Trigger)];
        match self {
            FuKind::Matcher => &MATCHER,
            FuKind::Comparator => &COMPARATOR,
            FuKind::Counter => &COUNTER,
            FuKind::Checksum => &CHECKSUM,
            FuKind::Shifter => &SHIFTER,
            FuKind::Masker => &MASKER,
            FuKind::Mmu => &MMU,
            FuKind::Rtu => &RTU,
            FuKind::Liu => &LIU,
            FuKind::Ippu => &IPPU,
            FuKind::Oppu => &OPPU,
            FuKind::Regs => &REGS,
            FuKind::Nc => &NC,
        }
    }

    /// Guard signals this FU drives into the network controller.
    pub fn guards(&self) -> &'static [&'static str] {
        match self {
            FuKind::Matcher => &["match"],
            FuKind::Comparator => &["eq", "lt", "gt"],
            FuKind::Counter => &["done", "zero"],
            FuKind::Rtu => &["hit"],
            FuKind::Ippu => &["pending"],
            _ => &[],
        }
    }

    /// Looks up a port spec by name.
    pub fn find_port(&self, name: &str) -> Option<PortSpec> {
        self.ports().iter().copied().find(|p| p.name == name)
    }

    /// Returns `true` if this FU drives a guard signal called `name`.
    pub fn has_guard(&self, name: &str) -> bool {
        self.guards().contains(&name)
    }

    /// The prefix used in assembly (`mtch0.t`, `cnt2.r`, ...).
    pub fn asm_prefix(&self) -> &'static str {
        match self {
            FuKind::Matcher => "mtch",
            FuKind::Comparator => "cmp",
            FuKind::Counter => "cnt",
            FuKind::Checksum => "csum",
            FuKind::Shifter => "shft",
            FuKind::Masker => "mask",
            FuKind::Mmu => "mmu",
            FuKind::Rtu => "rtu",
            FuKind::Liu => "liu",
            FuKind::Ippu => "ippu",
            FuKind::Oppu => "oppu",
            FuKind::Regs => "regs",
            FuKind::Nc => "nc",
        }
    }

    /// Parses an assembly prefix back into a kind.
    pub fn from_asm_prefix(s: &str) -> Option<FuKind> {
        FuKind::ALL.into_iter().find(|k| k.asm_prefix() == s)
    }
}

impl fmt::Display for FuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FuKind::Matcher => "Matcher",
            FuKind::Comparator => "Comparator",
            FuKind::Counter => "Counter",
            FuKind::Checksum => "Checksum",
            FuKind::Shifter => "Shifter",
            FuKind::Masker => "Masker",
            FuKind::Mmu => "MMU",
            FuKind::Rtu => "RoutingTableUnit",
            FuKind::Liu => "LocalInfoUnit",
            FuKind::Ippu => "iPPU",
            FuKind::Oppu => "oPPU",
            FuKind::Regs => "Registers",
            FuKind::Nc => "NetworkController",
        };
        f.write_str(name)
    }
}

impl FromStr for FuKind {
    type Err = UnknownFuError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FuKind::from_asm_prefix(s).ok_or_else(|| UnknownFuError(s.to_string()))
    }
}

/// Error returned when an FU prefix is not recognised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownFuError(pub String);

impl fmt::Display for UnknownFuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown functional unit prefix {:?}", self.0)
    }
}

impl std::error::Error for UnknownFuError {}

/// A reference to one FU instance: its kind plus an instance index.
///
/// During code generation indices are *virtual* (the programmer names as
/// many units as the algorithm has parallelism); the scheduler folds them
/// onto the physical instances of a [`MachineConfig`](crate::MachineConfig).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuRef {
    /// The unit kind.
    pub kind: FuKind,
    /// Instance index (virtual before scheduling, physical after).
    pub index: u8,
}

impl FuRef {
    /// Creates a reference to instance `index` of `kind`.
    pub const fn new(kind: FuKind, index: u8) -> Self {
        FuRef { kind, index }
    }
}

impl fmt::Display for FuRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.kind.asm_prefix(), self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_round_trips_through_prefix() {
        for k in FuKind::ALL {
            assert_eq!(FuKind::from_asm_prefix(k.asm_prefix()), Some(k));
            assert_eq!(k.asm_prefix().parse::<FuKind>().unwrap(), k);
        }
        assert!("bogus".parse::<FuKind>().is_err());
    }

    #[test]
    fn triggerable_units_have_a_trigger_port() {
        for k in FuKind::ALL {
            if k == FuKind::Regs {
                continue; // the register file has no trigger
            }
            assert!(
                k.ports().iter().any(|p| p.dir == PortDir::Trigger),
                "{k} lacks a trigger port"
            );
        }
    }

    #[test]
    fn find_port_and_guards() {
        assert_eq!(FuKind::Matcher.find_port("mask").unwrap().dir, PortDir::Operand);
        assert_eq!(FuKind::Matcher.find_port("t").unwrap().dir, PortDir::Trigger);
        assert_eq!(FuKind::Matcher.find_port("r").unwrap().dir, PortDir::Result);
        assert!(FuKind::Matcher.find_port("nope").is_none());
        assert!(FuKind::Matcher.has_guard("match"));
        assert!(FuKind::Comparator.has_guard("eq"));
        assert!(FuKind::Counter.has_guard("done"));
        assert!(FuKind::Ippu.has_guard("pending"));
        assert!(!FuKind::Checksum.has_guard("match"));
    }

    #[test]
    fn register_file_exposes_16_registers() {
        let ports = FuKind::Regs.ports();
        assert_eq!(ports.len(), 16);
        assert!(ports.iter().all(|p| p.dir == PortDir::Both));
        assert_eq!(GP_REGISTERS.len(), 16);
        for name in GP_REGISTERS {
            assert!(FuKind::Regs.find_port(name).is_some(), "{name}");
        }
    }

    #[test]
    fn furef_display() {
        assert_eq!(FuRef::new(FuKind::Matcher, 0).to_string(), "mtch0");
        assert_eq!(FuRef::new(FuKind::Counter, 2).to_string(), "cnt2");
        assert_eq!(FuRef::new(FuKind::Nc, 0).to_string(), "nc0");
    }

    #[test]
    fn display_names_are_papers_names() {
        assert_eq!(FuKind::Rtu.to_string(), "RoutingTableUnit");
        assert_eq!(FuKind::Ippu.to_string(), "iPPU");
        assert_eq!(FuKind::Mmu.to_string(), "MMU");
    }
}
