//! Independent structural validation of scheduled programs.
//!
//! [`validate_schedule`] re-checks a packed [`Program`] against every rule
//! that is *statically provable*, without sharing code with the scheduler:
//! instruction width vs bus count, FU instance existence, double writes to
//! one port in one cycle, double triggers of one FU in one cycle, double
//! program-counter writes, and resolved jump targets within the program.
//!
//! Timing rules (result/guard visible one cycle after the trigger) are
//! deliberately **not** checked here: reading a result or guard in the same
//! cycle as a trigger of its FU is legal TTA behaviour — the read phase
//! observes the *previous* value, and idioms like `cnt0.r -> cnt0.tadd`
//! depend on it.  Whether a same-cycle read wanted the old or the new value
//! is intent, not structure; the semantic oracle for that is the
//! cross-simulation property test (`optimizer_semantics`), which compares
//! architectural outcomes between the unscheduled and scheduled programs.

use std::fmt;

use crate::fu::{FuKind, FuRef};
use crate::machine::MachineConfig;
use crate::program::{PortRef, Program, Source};

/// One provable rule violation in a scheduled program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleViolation {
    /// An instruction carries more slots than the machine has buses.
    TooWide {
        /// Offending instruction index.
        instruction: usize,
    },
    /// A move references an FU instance the configuration lacks.
    MissingFu {
        /// Offending instruction index.
        instruction: usize,
        /// The reference.
        fu: FuRef,
    },
    /// Two moves in one instruction write the same port.
    PortConflict {
        /// Offending instruction index.
        instruction: usize,
        /// The doubly-written port.
        port: PortRef,
    },
    /// Two moves write the program counter in the same cycle.
    DoublePcWrite {
        /// Offending instruction index.
        instruction: usize,
    },
    /// A resolved jump immediate targets past the end of the program
    /// (targets equal to the length are a clean halt and therefore legal).
    JumpOutOfRange {
        /// Offending instruction index.
        instruction: usize,
        /// The out-of-range target.
        target: u32,
    },
    /// Two triggers fire on the same FU in the same cycle.
    DoubleTrigger {
        /// Offending instruction index.
        instruction: usize,
        /// The doubly-triggered FU.
        fu: FuRef,
    },
}

impl fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleViolation::TooWide { instruction } => {
                write!(f, "instruction {instruction} is wider than the bus count")
            }
            ScheduleViolation::MissingFu { instruction, fu } => {
                write!(f, "instruction {instruction} references missing unit {fu}")
            }
            ScheduleViolation::PortConflict { instruction, port } => {
                write!(f, "instruction {instruction} writes {port} twice")
            }
            ScheduleViolation::DoublePcWrite { instruction } => {
                write!(f, "instruction {instruction} writes the program counter twice")
            }
            ScheduleViolation::JumpOutOfRange { instruction, target } => {
                write!(f, "instruction {instruction} jumps to {target}, past the program end")
            }
            ScheduleViolation::DoubleTrigger { instruction, fu } => {
                write!(f, "instruction {instruction} triggers {fu} twice")
            }
        }
    }
}

/// Validates a scheduled program against `config`.
///
/// # Errors
///
/// Returns every violation found (empty-vec results are never returned —
/// a clean program yields `Ok(())`).
pub fn validate_schedule(
    prog: &Program,
    config: &MachineConfig,
) -> Result<(), Vec<ScheduleViolation>> {
    let mut violations = Vec::new();
    let len = prog.instructions.len();

    for (idx, ins) in prog.instructions.iter().enumerate() {
        if ins.slots.len() > usize::from(config.buses()) {
            violations.push(ScheduleViolation::TooWide { instruction: idx });
        }

        let moves: Vec<_> = ins.moves().collect();

        // Per-instruction structural checks.
        let mut written: Vec<PortRef> = Vec::new();
        let mut triggered: Vec<FuRef> = Vec::new();
        for mv in &moves {
            let mut check_fu = |fu: FuRef| {
                if fu.index >= config.fu_count(fu.kind) {
                    violations.push(ScheduleViolation::MissingFu { instruction: idx, fu });
                }
            };
            check_fu(mv.dst.fu);
            if let Source::Port(p) = &mv.src {
                check_fu(p.fu);
            }
            if let Some(g) = &mv.guard {
                check_fu(g.fu);
            }

            if written.contains(&mv.dst) {
                violations.push(if mv.dst.fu.kind == FuKind::Nc {
                    ScheduleViolation::DoublePcWrite { instruction: idx }
                } else {
                    ScheduleViolation::PortConflict { instruction: idx, port: mv.dst }
                });
            }
            written.push(mv.dst);
            if mv.dst.is_trigger() && mv.dst.fu.kind != FuKind::Nc {
                if triggered.contains(&mv.dst.fu) {
                    violations
                        .push(ScheduleViolation::DoubleTrigger { instruction: idx, fu: mv.dst.fu });
                }
                triggered.push(mv.dst.fu);
            }

            // Resolved jumps must land inside the program (or exactly at
            // its end, which halts cleanly).
            if mv.is_control_transfer() {
                if let Source::Imm(target) = mv.src {
                    if (target as usize) > len {
                        violations
                            .push(ScheduleViolation::JumpOutOfRange { instruction: idx, target });
                    }
                }
            }
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CodeBuilder;
    use crate::fu::FuKind;
    use crate::program::{Instruction, Move};
    use crate::sched::schedule;

    fn cnt_port(name: &str) -> PortRef {
        PortRef::new(FuKind::Counter, 0, name)
    }

    #[test]
    fn scheduler_output_validates() {
        let mut b = CodeBuilder::new();
        let cnt = b.fu(FuKind::Counter, 0);
        let cmp = b.fu(FuKind::Comparator, 0);
        b.mv(0u32, cnt.port("tset"));
        b.mv(5u32, cnt.port("stop"));
        b.label("loop");
        b.mv(1u32, cnt.port("tinc"));
        b.mv(cnt.port("r"), cmp.port("t"));
        b.jump_unless(cnt.guard("done"), "loop");
        let seq = b.finish();
        for buses in 1..=4u8 {
            let config = MachineConfig::new(buses);
            let prog = schedule(&seq, &config);
            assert_eq!(validate_schedule(&prog, &config), Ok(()), "{buses} buses");
        }
    }

    #[test]
    fn same_cycle_old_value_reads_are_legal() {
        // Reading a result (or guard) in the trigger's own cycle observes
        // the previous value — legal TTA behaviour, not a violation.
        let mut prog = Program::new();
        let trig = Move::new(1u32, cnt_port("tinc"));
        let read = Move::new(Source::Port(cnt_port("r")), PortRef::new(FuKind::Regs, 0, "r0"));
        let guarded = Move::new(1u32, PortRef::new(FuKind::Regs, 0, "r1"))
            .with_guard(crate::program::Guard::new(FuKind::Counter, 0, "done", false));
        prog.instructions.push(Instruction { slots: vec![Some(trig), Some(read), Some(guarded)] });
        assert_eq!(validate_schedule(&prog, &MachineConfig::new(3)), Ok(()));
    }

    #[test]
    fn detects_double_pc_write_and_bad_jump() {
        let mut prog = Program::new();
        let pc = || PortRef::new(FuKind::Nc, 0, "pc");
        prog.instructions.push(Instruction {
            slots: vec![Some(Move::new(0u32, pc())), Some(Move::new(9u32, pc()))],
        });
        let err = validate_schedule(&prog, &MachineConfig::new(2)).unwrap_err();
        assert!(
            err.iter().any(|v| matches!(v, ScheduleViolation::DoublePcWrite { .. })),
            "{err:?}"
        );
        assert!(
            err.iter().any(|v| matches!(v, ScheduleViolation::JumpOutOfRange { target: 9, .. })),
            "{err:?}"
        );
        // Jump to exactly len (1) is a clean halt: build a fresh program.
        let mut ok = Program::new();
        ok.instructions.push(Instruction::single(Move::new(1u32, pc()), 1));
        assert_eq!(validate_schedule(&ok, &MachineConfig::new(1)), Ok(()));
    }

    #[test]
    fn detects_double_trigger_and_port_conflict() {
        let mut prog = Program::new();
        prog.instructions.push(Instruction {
            slots: vec![
                Some(Move::new(1u32, cnt_port("tinc"))),
                Some(Move::new(2u32, cnt_port("tadd"))),
            ],
        });
        prog.instructions.push(Instruction {
            slots: vec![
                Some(Move::new(1u32, PortRef::new(FuKind::Regs, 0, "r1"))),
                Some(Move::new(2u32, PortRef::new(FuKind::Regs, 0, "r1"))),
            ],
        });
        let err = validate_schedule(&prog, &MachineConfig::new(2)).unwrap_err();
        assert!(err.iter().any(|v| matches!(v, ScheduleViolation::DoubleTrigger { .. })));
        assert!(err.iter().any(|v| matches!(v, ScheduleViolation::PortConflict { .. })));
    }

    #[test]
    fn detects_width_and_missing_fu() {
        let mut prog = Program::new();
        prog.instructions.push(Instruction {
            slots: vec![
                Some(Move::new(1u32, PortRef::new(FuKind::Regs, 0, "r0"))),
                Some(Move::new(1u32, PortRef::new(FuKind::Matcher, 2, "mask"))),
            ],
        });
        let err = validate_schedule(&prog, &MachineConfig::new(1)).unwrap_err();
        assert!(err.iter().any(|v| matches!(v, ScheduleViolation::TooWide { .. })));
        assert!(err.iter().any(|v| matches!(v, ScheduleViolation::MissingFu { .. })));
    }

    #[test]
    fn looping_scheduled_code_validates() {
        let mut b = CodeBuilder::new();
        let cnt = b.fu(FuKind::Counter, 0);
        b.mv(1u32, cnt.port("tinc"));
        b.label("join");
        b.mv(cnt.port("r"), b.reg(0));
        b.jump("join");
        let seq = b.finish();
        let config = MachineConfig::new(1);
        let mut prog = schedule(&seq, &config);
        prog.resolve_labels().expect("labels defined");
        assert_eq!(validate_schedule(&prog, &config), Ok(()));
    }

    #[test]
    fn violations_display() {
        let v =
            ScheduleViolation::DoubleTrigger { instruction: 3, fu: FuRef::new(FuKind::Counter, 0) };
        assert!(v.to_string().contains("triggers cnt0 twice"));
    }
}
