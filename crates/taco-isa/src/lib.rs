#![warn(missing_docs)]

//! The TACO transport-triggered architecture: ISA, assembler and optimizer.
//!
//! A TACO processor (Virtanen et al.) is a TTA: "instructions only specify
//! data moves between functional units … the instruction word of any TTA
//! processor consists mostly of source and destination addresses.  The
//! maximum number of instructions (i.e. data transports) that can be carried
//! out in one clock cycle is equal to the number of data buses in the
//! interconnection network."
//!
//! This crate defines everything *static* about such a processor:
//!
//! * [`FuKind`] / [`FuRef`] — the functional-unit catalogue (Matcher,
//!   Comparator, Counter, Checksum, Shifter, Masker, MMU, Routing Table
//!   Unit, Local Info Unit, iPPU, oPPU, registers, network controller) with
//!   their operand/trigger/result ports and guard signals;
//! * [`MachineConfig`] — an architecture instance: bus count plus FU
//!   instance counts (the paper's `1BUS/1FU`, `3BUS/1FU`,
//!   `3bus/3CNT,3CMP,3M` rows);
//! * [`Move`], [`Instruction`], [`Program`], [`MoveSeq`] — code;
//! * [`asm`] — a round-tripping textual assembly format;
//! * [`CodeBuilder`] — programmatic code generation with virtual FU
//!   instances;
//! * [`optimize`] + [`schedule`] — the paper's Fig. 3 pipeline: bypassing
//!   and dead-move elimination followed by list scheduling onto the buses
//!   and physical FUs of a concrete configuration.
//!
//! The dynamic side — actually executing programs cycle by cycle — lives in
//! the `taco-sim` crate.
//!
//! # Examples
//!
//! The paper's Fig. 3 expression `a = (b*2 + c)/4`, generated, optimized and
//! scheduled for one and three buses:
//!
//! ```
//! use taco_isa::{schedule, CodeBuilder, FuKind, MachineConfig};
//!
//! let mut b = CodeBuilder::new();
//! let shl = b.alloc(FuKind::Shifter);
//! let add = b.alloc(FuKind::Counter);
//! b.mv(1u32, shl.port("amount"));
//! b.mv(b.reg(0), shl.port("tshl"));      // b * 2
//! b.mv(shl.port("r"), add.port("tset"));
//! b.mv(b.reg(1), add.port("tadd"));      // + c
//! b.mv(2u32, shl.port("amount"));
//! b.mv(add.port("r"), shl.port("tshr")); // / 4
//! b.mv(shl.port("r"), b.reg(2));         // a
//! let seq = b.finish();
//!
//! let narrow = schedule(&seq, &MachineConfig::one_bus_one_fu());
//! let wide = schedule(&seq, &MachineConfig::three_bus_one_fu());
//! assert!(wide.instructions.len() < narrow.instructions.len());
//! ```

pub mod asm;
pub mod builder;
pub mod encode;
pub mod fu;
pub mod machine;
pub mod opt;
pub mod program;
pub mod sched;
pub mod system;
pub mod verify;

pub use builder::{CodeBuilder, FuHandle};
pub use encode::{decode, encode, CodeError, EncodedProgram, SocketMap};
pub use fu::{FuKind, FuRef, PortDir, PortSpec};
pub use machine::MachineConfig;
pub use opt::{bypass, eliminate_dead_moves, eliminate_dead_moves_with, optimize, optimize_with};
pub use program::{Guard, Instruction, Move, MoveSeq, PortRef, Program, Source};
pub use sched::schedule;
pub use system::{
    CacheConfig, CoherenceProtocol, InterconnectConfig, SystemConfig, Topology, MAX_CORES,
};
pub use verify::{validate_schedule, ScheduleViolation};
