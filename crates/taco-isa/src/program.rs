//! Program representation: moves, instructions, and programs.
//!
//! "TTAs are in essence one instruction processors, as instructions only
//! specify data moves between functional units."  A TACO instruction word
//! carries up to one move per bus; a program is a sequence of instruction
//! words plus labels for control transfers (which are themselves moves into
//! the network controller's `pc` register).

use std::collections::BTreeMap;
use std::fmt;

use crate::fu::{FuKind, FuRef, PortDir};

/// A reference to one FU port, e.g. `mtch0.t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortRef {
    /// The FU instance.
    pub fu: FuRef,
    /// The port name (one of [`FuKind::ports`] for `fu.kind`).
    pub port: &'static str,
}

impl PortRef {
    /// Creates a port reference, validating that the port exists.
    ///
    /// # Panics
    ///
    /// Panics if `kind` has no port called `port` — that is a programming
    /// error in generated code, not a runtime condition.
    pub fn new(kind: FuKind, index: u8, port: &str) -> Self {
        let spec =
            kind.find_port(port).unwrap_or_else(|| panic!("{kind} has no port named {port:?}"));
        PortRef { fu: FuRef::new(kind, index), port: spec.name }
    }

    /// The direction of this port.
    pub fn dir(&self) -> PortDir {
        self.fu.kind.find_port(self.port).expect("port validated at construction").dir
    }

    /// Returns `true` if a move may read from this port.
    pub fn is_readable(&self) -> bool {
        matches!(self.dir(), PortDir::Result | PortDir::Both)
    }

    /// Returns `true` if a move may write to this port.
    pub fn is_writable(&self) -> bool {
        matches!(self.dir(), PortDir::Operand | PortDir::Trigger | PortDir::Both)
    }

    /// Returns `true` if writing this port triggers the FU.
    pub fn is_trigger(&self) -> bool {
        self.dir() == PortDir::Trigger
    }
}

impl fmt::Display for PortRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.fu, self.port)
    }
}

/// The source of a move: a port, an immediate, or an unresolved label.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Source {
    /// Read a result (or register-file) port.
    Port(PortRef),
    /// An immediate carried in the instruction word.
    Imm(u32),
    /// A label, resolved to an instruction index by the assembler or
    /// scheduler before execution.
    Label(String),
}

impl Source {
    /// Returns the port if this source reads one.
    pub fn port(&self) -> Option<PortRef> {
        match self {
            Source::Port(p) => Some(*p),
            _ => None,
        }
    }
}

impl From<u32> for Source {
    fn from(v: u32) -> Self {
        Source::Imm(v)
    }
}

impl From<PortRef> for Source {
    fn from(p: PortRef) -> Self {
        Source::Port(p)
    }
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Source::Port(p) => p.fmt(f),
            Source::Imm(v) => write!(f, "{v:#x}"),
            Source::Label(l) => write!(f, "@{l}"),
        }
    }
}

/// A guard: predicate a move on an FU's 1-bit result signal.
///
/// The paper's Matcher "reports its result to the Interconnection Network
/// Controller by means of a result bit signal directly connected between
/// them"; guards are how programs consume those bits.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Guard {
    /// The FU driving the signal.
    pub fu: FuRef,
    /// Signal name (one of [`FuKind::guards`]).
    pub signal: &'static str,
    /// If `true` the move executes when the signal is *low*.
    pub negate: bool,
}

impl Guard {
    /// Creates a guard on `kind[index].signal`.
    ///
    /// # Panics
    ///
    /// Panics if the FU kind does not drive a guard signal of that name.
    pub fn new(kind: FuKind, index: u8, signal: &str, negate: bool) -> Self {
        let canonical = kind
            .guards()
            .iter()
            .find(|g| **g == signal)
            .unwrap_or_else(|| panic!("{kind} drives no guard signal {signal:?}"));
        Guard { fu: FuRef::new(kind, index), signal: canonical, negate }
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}.{}", if self.negate { '!' } else { '?' }, self.fu, self.signal)
    }
}

/// One data transport: `src -> dst`, optionally guarded.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Move {
    /// Where the value comes from.
    pub src: Source,
    /// The written port.
    pub dst: PortRef,
    /// Optional predicate.
    pub guard: Option<Guard>,
}

impl Move {
    /// Creates an unguarded move.
    pub fn new(src: impl Into<Source>, dst: PortRef) -> Self {
        Move { src: src.into(), dst, guard: None }
    }

    /// Returns a copy with a guard attached.
    pub fn with_guard(mut self, guard: Guard) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Returns `true` if this move writes the network controller's program
    /// counter (i.e. is a jump).
    pub fn is_control_transfer(&self) -> bool {
        self.dst.fu.kind == FuKind::Nc
    }
}

impl fmt::Display for Move {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = &self.guard {
            write!(f, "{g} ")?;
        }
        write!(f, "{} -> {}", self.src, self.dst)
    }
}

/// One instruction word: up to one move per bus.
///
/// `slots[i]` is the move carried by bus `i` this cycle, or `None` if the
/// bus idles.  Bus utilisation — a Table 1 column — is the fraction of
/// non-`None` slots over a whole execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Instruction {
    /// Per-bus move slots.
    pub slots: Vec<Option<Move>>,
}

impl Instruction {
    /// Creates an instruction with `buses` empty slots.
    pub fn empty(buses: u8) -> Self {
        Instruction { slots: vec![None; usize::from(buses)] }
    }

    /// Creates a single-move instruction occupying the first of `buses`
    /// slots.
    pub fn single(mv: Move, buses: u8) -> Self {
        let mut ins = Self::empty(buses);
        ins.slots[0] = Some(mv);
        ins
    }

    /// Iterates over the occupied slots.
    pub fn moves(&self) -> impl Iterator<Item = &Move> {
        self.slots.iter().flatten()
    }

    /// Number of occupied slots.
    pub fn move_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .slots
            .iter()
            .map(|s| s.as_ref().map_or_else(|| "...".to_string(), |m| m.to_string()))
            .collect();
        f.write_str(&parts.join(" | "))
    }
}

/// A scheduled program: instruction words plus a label table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// The instruction words, executed from index 0.
    pub instructions: Vec<Instruction>,
    /// Label name → instruction index.
    pub labels: BTreeMap<String, usize>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a linear move sequence as a one-move-per-instruction program —
    /// the "non-optimized" form of the paper's Fig. 3.
    pub fn from_moves(seq: &MoveSeq, buses: u8) -> Self {
        let mut labels = BTreeMap::new();
        for (name, idx) in &seq.labels {
            labels.insert(name.clone(), *idx);
        }
        Program {
            instructions: seq.moves.iter().map(|m| Instruction::single(m.clone(), buses)).collect(),
            labels,
        }
    }

    /// Replaces every [`Source::Label`] with the immediate instruction index
    /// it names.
    ///
    /// # Errors
    ///
    /// Returns the offending label name if it is not defined.
    pub fn resolve_labels(&mut self) -> Result<(), String> {
        let labels = self.labels.clone();
        for ins in &mut self.instructions {
            for slot in ins.slots.iter_mut().flatten() {
                if let Source::Label(name) = &slot.src {
                    match labels.get(name) {
                        Some(idx) => slot.src = Source::Imm(*idx as u32),
                        None => return Err(name.clone()),
                    }
                }
            }
        }
        Ok(())
    }

    /// Total number of move slots across all instructions (occupied or not).
    pub fn slot_capacity(&self) -> usize {
        self.instructions.iter().map(|i| i.slots.len()).sum()
    }

    /// Total number of moves.
    pub fn move_count(&self) -> usize {
        self.instructions.iter().map(|i| i.move_count()).sum()
    }

    /// Trigger counts per FU kind across the whole program — a static
    /// pressure profile.  The design-space explorer uses it as the
    /// replication heuristic the paper's future-work section asks for: the
    /// kind with the most triggers is the first candidate for an extra
    /// instance.
    pub fn fu_pressure(&self) -> std::collections::BTreeMap<crate::fu::FuKind, usize> {
        let mut counts = std::collections::BTreeMap::new();
        for ins in &self.instructions {
            for mv in ins.moves() {
                if mv.dst.is_trigger() && mv.dst.fu.kind != crate::fu::FuKind::Nc {
                    *counts.entry(mv.dst.fu.kind).or_insert(0) += 1;
                }
            }
        }
        counts
    }

    /// Static bus utilisation: occupied slots over total slots (0..=1).
    ///
    /// The dynamic equivalent — weighted by how often each instruction
    /// actually executes — is reported by the simulator.
    pub fn static_bus_utilization(&self) -> f64 {
        if self.instructions.is_empty() {
            return 0.0;
        }
        self.move_count() as f64 / self.slot_capacity() as f64
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let by_index: BTreeMap<usize, &str> =
            self.labels.iter().map(|(n, i)| (*i, n.as_str())).collect();
        for (i, ins) in self.instructions.iter().enumerate() {
            if let Some(name) = by_index.get(&i) {
                writeln!(f, "{name}:")?;
            }
            writeln!(f, "  {ins}")?;
        }
        // Labels past the last instruction (the clean-halt target).
        if let Some(name) = by_index.get(&self.instructions.len()) {
            writeln!(f, "{name}:")?;
        }
        Ok(())
    }
}

/// A linear move sequence with labels — the unscheduled form produced by
/// code generators and consumed by the scheduler.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MoveSeq {
    /// The moves in program order.
    pub moves: Vec<Move>,
    /// Label name → index of the move it precedes (may equal `moves.len()`
    /// for a label at the very end).
    pub labels: BTreeMap<String, usize>,
}

impl MoveSeq {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a move.
    pub fn push(&mut self, mv: Move) {
        self.moves.push(mv);
    }

    /// Defines `name` at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already defined.
    pub fn define_label(&mut self, name: impl Into<String>) {
        let name = name.into();
        let prev = self.labels.insert(name.clone(), self.moves.len());
        assert!(prev.is_none(), "label {name:?} defined twice");
    }

    /// Number of moves.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Returns `true` if the sequence holds no moves.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mmu_read() -> Move {
        Move::new(PortRef::new(FuKind::Mmu, 0, "r"), PortRef::new(FuKind::Regs, 0, "r1"))
    }

    #[test]
    fn port_directions() {
        let res = PortRef::new(FuKind::Mmu, 0, "r");
        assert!(res.is_readable() && !res.is_writable());
        let trig = PortRef::new(FuKind::Mmu, 0, "tread");
        assert!(trig.is_trigger() && trig.is_writable() && !trig.is_readable());
        let reg = PortRef::new(FuKind::Regs, 0, "r5");
        assert!(reg.is_readable() && reg.is_writable() && !reg.is_trigger());
    }

    #[test]
    #[should_panic(expected = "no port named")]
    fn bad_port_panics() {
        let _ = PortRef::new(FuKind::Matcher, 0, "bogus");
    }

    #[test]
    #[should_panic(expected = "no guard signal")]
    fn bad_guard_panics() {
        let _ = Guard::new(FuKind::Checksum, 0, "match", false);
    }

    #[test]
    fn display_forms() {
        let mv = Move::new(5u32, PortRef::new(FuKind::Counter, 1, "stop"));
        assert_eq!(mv.to_string(), "0x5 -> cnt1.stop");
        let guarded =
            Move::new(PortRef::new(FuKind::Counter, 0, "r"), PortRef::new(FuKind::Nc, 0, "pc"))
                .with_guard(Guard::new(FuKind::Counter, 0, "done", true));
        assert_eq!(guarded.to_string(), "!cnt0.done cnt0.r -> nc0.pc");
        let lbl = Move::new(Source::Label("loop".into()), PortRef::new(FuKind::Nc, 0, "pc"));
        assert_eq!(lbl.to_string(), "@loop -> nc0.pc");
    }

    #[test]
    fn control_transfer_detection() {
        let jump = Move::new(0u32, PortRef::new(FuKind::Nc, 0, "pc"));
        assert!(jump.is_control_transfer());
        assert!(!mmu_read().is_control_transfer());
    }

    #[test]
    fn instruction_slots_and_utilization() {
        let mut ins = Instruction::empty(3);
        assert_eq!(ins.move_count(), 0);
        ins.slots[1] = Some(mmu_read());
        assert_eq!(ins.move_count(), 1);
        assert_eq!(ins.to_string(), "... | mmu0.r -> regs0.r1 | ...");

        let prog = Program {
            instructions: vec![ins, Instruction::single(mmu_read(), 3)],
            labels: BTreeMap::new(),
        };
        assert_eq!(prog.move_count(), 2);
        assert_eq!(prog.slot_capacity(), 6);
        assert!((prog.static_bus_utilization() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn label_resolution() {
        let mut seq = MoveSeq::new();
        seq.define_label("start");
        seq.push(Move::new(Source::Label("start".into()), PortRef::new(FuKind::Nc, 0, "pc")));
        let mut prog = Program::from_moves(&seq, 1);
        prog.resolve_labels().unwrap();
        match &prog.instructions[0].slots[0].as_ref().unwrap().src {
            Source::Imm(0) => {}
            other => panic!("expected resolved label, got {other:?}"),
        }
    }

    #[test]
    fn unresolved_label_reported() {
        let mut seq = MoveSeq::new();
        seq.push(Move::new(Source::Label("nowhere".into()), PortRef::new(FuKind::Nc, 0, "pc")));
        let mut prog = Program::from_moves(&seq, 1);
        assert_eq!(prog.resolve_labels(), Err("nowhere".to_string()));
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_label_panics() {
        let mut seq = MoveSeq::new();
        seq.define_label("x");
        seq.define_label("x");
    }

    #[test]
    fn fu_pressure_counts_triggers_per_kind() {
        let mut seq = MoveSeq::new();
        seq.push(Move::new(1u32, PortRef::new(FuKind::Counter, 0, "tinc")));
        seq.push(Move::new(2u32, PortRef::new(FuKind::Counter, 1, "tset")));
        seq.push(Move::new(3u32, PortRef::new(FuKind::Matcher, 0, "t")));
        seq.push(Move::new(4u32, PortRef::new(FuKind::Matcher, 0, "mask"))); // operand, not trigger
        seq.push(Move::new(0u32, PortRef::new(FuKind::Nc, 0, "pc"))); // jumps excluded
        let prog = Program::from_moves(&seq, 1);
        let pressure = prog.fu_pressure();
        assert_eq!(pressure.get(&FuKind::Counter), Some(&2));
        assert_eq!(pressure.get(&FuKind::Matcher), Some(&1));
        assert_eq!(pressure.get(&FuKind::Nc), None);
    }

    #[test]
    fn empty_program_utilization_is_zero() {
        assert_eq!(Program::new().static_bus_utilization(), 0.0);
    }
}
