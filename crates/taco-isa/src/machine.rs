//! Architecture instances: how many buses, how many FUs of each type.
//!
//! "Architecture instances are constructed by varying the number of modules
//! of the same type in the processor as well as varying the internal data
//! transport capacity of the instances."  A [`MachineConfig`] is exactly
//! that: a bus count plus an instance count per FU kind.

use std::collections::BTreeMap;
use std::fmt;

use crate::fu::FuKind;

/// One TACO architecture instance.
///
/// Singleton units (RTU, LIU, iPPU, oPPU, the register file and the
/// network controller) always have exactly one instance; the simple
/// datapath units (Matcher, Comparator, Counter, Checksum, Shifter, Masker)
/// can be replicated, matching the configurations the paper explores, and
/// replicating the MMU models a multi-ported data memory (an ablation
/// beyond the paper).
///
/// # Examples
///
/// ```
/// use taco_isa::{FuKind, MachineConfig};
///
/// let m = MachineConfig::new(3).with_fu_count(FuKind::Matcher, 3);
/// assert_eq!(m.buses(), 3);
/// assert_eq!(m.fu_count(FuKind::Matcher), 3);
/// assert_eq!(m.fu_count(FuKind::Mmu), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MachineConfig {
    buses: u8,
    fu_counts: BTreeMap<FuKind, u8>,
}

impl MachineConfig {
    /// Creates a configuration with `buses` data buses and one FU of each
    /// kind.
    ///
    /// # Panics
    ///
    /// Panics if `buses` is zero.
    pub fn new(buses: u8) -> Self {
        assert!(buses > 0, "a tta needs at least one bus");
        MachineConfig { buses, fu_counts: BTreeMap::new() }
    }

    /// The paper's baseline: one bus, one FU of each type.
    pub fn one_bus_one_fu() -> Self {
        Self::new(1)
    }

    /// The paper's second configuration: three buses, one FU of each type.
    pub fn three_bus_one_fu() -> Self {
        Self::new(3)
    }

    /// The paper's third configuration: three buses with 3 Counters,
    /// 3 Comparers and 3 Matchers.
    pub fn three_bus_three_fu() -> Self {
        Self::new(3)
            .with_fu_count(FuKind::Counter, 3)
            .with_fu_count(FuKind::Comparator, 3)
            .with_fu_count(FuKind::Matcher, 3)
    }

    /// Returns a copy with `count` instances of `kind`.
    ///
    /// Replicating the MMU models a **multi-ported data memory**: every
    /// instance is an independent port into the same memory array (the
    /// what-if behind the paper's FU-scaling results — see the
    /// `memory_ports` ablation).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero, or if `kind` is a singleton unit and
    /// `count > 1`.
    pub fn with_fu_count(mut self, kind: FuKind, count: u8) -> Self {
        assert!(count > 0, "fu count must be positive");
        assert!(
            count == 1 || FuKind::REPLICABLE.contains(&kind) || Self::is_scalable_datapath(kind),
            "{kind} cannot be replicated"
        );
        self.fu_counts.insert(kind, count);
        self
    }

    fn is_scalable_datapath(kind: FuKind) -> bool {
        matches!(kind, FuKind::Checksum | FuKind::Shifter | FuKind::Masker | FuKind::Mmu)
    }

    /// Number of data buses (the maximum number of moves per cycle).
    pub fn buses(&self) -> u8 {
        self.buses
    }

    /// Number of instances of `kind` in this configuration.
    pub fn fu_count(&self, kind: FuKind) -> u8 {
        self.fu_counts.get(&kind).copied().unwrap_or(1)
    }

    /// Iterates over `(kind, count)` for every FU kind.
    pub fn fu_counts(&self) -> impl Iterator<Item = (FuKind, u8)> + '_ {
        FuKind::ALL.into_iter().map(|k| (k, self.fu_count(k)))
    }

    /// Total number of FU instances (excluding the network controller,
    /// which is the interconnect itself).
    pub fn total_fus(&self) -> u32 {
        FuKind::ALL
            .into_iter()
            .filter(|k| *k != FuKind::Nc)
            .map(|k| u32::from(self.fu_count(k)))
            .sum()
    }

    /// Total number of sockets: one per FU port instance, the quantity the
    /// physical estimation model charges interconnect area for.
    pub fn total_sockets(&self) -> u32 {
        FuKind::ALL.into_iter().map(|k| u32::from(self.fu_count(k)) * k.ports().len() as u32).sum()
    }

    /// A short identifier such as `3bus/3CNT,3CMP,3M` in the style of the
    /// paper's Table 1 row labels.
    pub fn label(&self) -> String {
        let mut replicated: Vec<(&FuKind, &u8)> =
            self.fu_counts.iter().filter(|(_, &c)| c > 1).collect();
        // Table 1 lists counters, comparers, matchers in that order.
        let rank = |k: &FuKind| match k {
            FuKind::Counter => 0,
            FuKind::Comparator => 1,
            FuKind::Matcher => 2,
            _ => 3,
        };
        replicated.sort_by_key(|(k, _)| rank(k));
        let extras: Vec<String> = replicated
            .into_iter()
            .map(|(k, c)| {
                let tag = match k {
                    FuKind::Counter => "CNT",
                    FuKind::Comparator => "CMP",
                    FuKind::Matcher => "M",
                    other => other.asm_prefix(),
                };
                format!("{c}{tag}")
            })
            .collect();
        if extras.is_empty() {
            format!("{}BUS/1FU", self.buses)
        } else {
            format!("{}bus/{}", self.buses, extras.join(","))
        }
    }
}

impl Default for MachineConfig {
    /// The paper's three-bus, one-FU-each configuration.
    fn default() -> Self {
        Self::three_bus_one_fu()
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations() {
        let a = MachineConfig::one_bus_one_fu();
        assert_eq!((a.buses(), a.fu_count(FuKind::Matcher)), (1, 1));
        assert_eq!(a.label(), "1BUS/1FU");

        let b = MachineConfig::three_bus_one_fu();
        assert_eq!(b.label(), "3BUS/1FU");

        let c = MachineConfig::three_bus_three_fu();
        assert_eq!(c.fu_count(FuKind::Counter), 3);
        assert_eq!(c.fu_count(FuKind::Comparator), 3);
        assert_eq!(c.fu_count(FuKind::Matcher), 3);
        assert_eq!(c.fu_count(FuKind::Checksum), 1);
        assert_eq!(c.label(), "3bus/3CNT,3CMP,3M");
    }

    #[test]
    #[should_panic(expected = "at least one bus")]
    fn zero_buses_rejected() {
        let _ = MachineConfig::new(0);
    }

    #[test]
    #[should_panic(expected = "cannot be replicated")]
    fn singleton_units_cannot_replicate() {
        let _ = MachineConfig::new(1).with_fu_count(FuKind::Rtu, 2);
    }

    #[test]
    fn mmu_replication_models_memory_ports() {
        let m = MachineConfig::new(3).with_fu_count(FuKind::Mmu, 2);
        assert_eq!(m.fu_count(FuKind::Mmu), 2);
        assert_eq!(m.label(), "3bus/2mmu");
    }

    #[test]
    fn totals() {
        let one = MachineConfig::one_bus_one_fu();
        assert_eq!(one.total_fus(), 12); // 13 kinds minus the NC
        let three = MachineConfig::three_bus_three_fu();
        assert_eq!(three.total_fus(), 18); // +2 each of CNT, CMP, M
        assert!(three.total_sockets() > one.total_sockets());
    }

    #[test]
    fn fu_counts_iterates_all_kinds() {
        let m = MachineConfig::default();
        assert_eq!(m.fu_counts().count(), FuKind::ALL.len());
    }

    #[test]
    fn display_matches_label() {
        let m = MachineConfig::three_bus_three_fu();
        assert_eq!(m.to_string(), m.label());
    }
}
