//! Ergonomic code generation for TACO move programs.
//!
//! "From the programmer's point of view, programming TACO processors is a
//! matter of moving data from output to input registers."  [`CodeBuilder`]
//! is the matching API: it appends moves to a [`MoveSeq`] one at a time,
//! handles labels and guards, and hands out *virtual* FU instances so that
//! a code generator can expose parallelism without knowing how many physical
//! units the final architecture will have — the scheduler folds virtual
//! instances onto the physical ones.

use crate::fu::{FuKind, FuRef};
use crate::program::{Guard, Move, MoveSeq, PortRef, Source};

/// A builder over a [`MoveSeq`].
///
/// # Examples
///
/// Count from 0 to 3 in a loop (the builder equivalent of the assembly
/// example in [`crate::asm`]):
///
/// ```
/// use taco_isa::{CodeBuilder, FuKind};
///
/// let mut b = CodeBuilder::new();
/// let cnt = b.fu(FuKind::Counter, 0);
/// b.mv(0u32, cnt.port("tset"));
/// b.mv(3u32, cnt.port("stop"));
/// b.label("loop");
/// b.mv(1u32, cnt.port("tinc"));
/// b.jump_unless(cnt.guard("done"), "loop");
/// let seq = b.finish();
/// assert_eq!(seq.len(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CodeBuilder {
    seq: MoveSeq,
    next_virtual: std::collections::BTreeMap<FuKind, u8>,
    next_label: u32,
}

/// A handle to one (virtual or physical) FU instance, for building port and
/// guard references tersely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuHandle {
    fu: FuRef,
}

impl FuHandle {
    /// The underlying FU reference.
    pub fn fu_ref(&self) -> FuRef {
        self.fu
    }

    /// A reference to port `name` of this instance.
    ///
    /// # Panics
    ///
    /// Panics if the kind has no such port.
    pub fn port(&self, name: &str) -> PortRef {
        PortRef::new(self.fu.kind, self.fu.index, name)
    }

    /// A positive guard on signal `name` of this instance.
    ///
    /// # Panics
    ///
    /// Panics if the kind drives no such signal.
    pub fn guard(&self, name: &str) -> Guard {
        Guard::new(self.fu.kind, self.fu.index, name, false)
    }
}

impl CodeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle to instance `index` of `kind`.
    pub fn fu(&self, kind: FuKind, index: u8) -> FuHandle {
        FuHandle { fu: FuRef::new(kind, index) }
    }

    /// Allocates the next unused virtual instance of `kind`.
    ///
    /// Code that wants `w`-way parallelism calls this `w` times and
    /// interleaves uses; the scheduler maps virtual instance `v` onto
    /// physical instance `v mod count(kind)`.
    pub fn alloc(&mut self, kind: FuKind) -> FuHandle {
        let idx = self.next_virtual.entry(kind).or_insert(0);
        let handle = FuHandle { fu: FuRef::new(kind, *idx) };
        *idx += 1;
        handle
    }

    /// General-purpose register `i` (`regs0.rI`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 16`.
    pub fn reg(&self, i: u8) -> PortRef {
        assert!(i < 16, "register index {i} out of range");
        PortRef::new(FuKind::Regs, 0, crate::fu::GP_REGISTERS[usize::from(i)])
    }

    /// Appends an unguarded move.
    pub fn mv(&mut self, src: impl Into<Source>, dst: PortRef) {
        self.seq.push(Move::new(src, dst));
    }

    /// Appends a guarded move.
    pub fn mv_if(&mut self, guard: Guard, src: impl Into<Source>, dst: PortRef) {
        self.seq.push(Move::new(src, dst).with_guard(guard));
    }

    /// Appends a move guarded on the *negation* of `guard`.
    pub fn mv_unless(&mut self, mut guard: Guard, src: impl Into<Source>, dst: PortRef) {
        guard.negate = !guard.negate;
        self.seq.push(Move::new(src, dst).with_guard(guard));
    }

    /// Defines `name` at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already defined.
    pub fn label(&mut self, name: impl Into<String>) {
        self.seq.define_label(name);
    }

    /// Generates a fresh label name (`.L0`, `.L1`, ...) without defining it.
    pub fn fresh_label(&mut self, hint: &str) -> String {
        let name = format!("L{}_{hint}", self.next_label);
        self.next_label += 1;
        name
    }

    /// Appends an unconditional jump to `label`.
    pub fn jump(&mut self, label: impl Into<String>) {
        self.seq.push(Move::new(Source::Label(label.into()), PortRef::new(FuKind::Nc, 0, "pc")));
    }

    /// Appends a jump taken when `guard` is high.
    pub fn jump_if(&mut self, guard: Guard, label: impl Into<String>) {
        self.seq.push(
            Move::new(Source::Label(label.into()), PortRef::new(FuKind::Nc, 0, "pc"))
                .with_guard(guard),
        );
    }

    /// Appends a jump taken when `guard` is low.
    pub fn jump_unless(&mut self, mut guard: Guard, label: impl Into<String>) {
        guard.negate = !guard.negate;
        self.jump_if(guard, label);
    }

    /// Number of moves emitted so far.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Returns `true` if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Finishes and returns the move sequence.
    pub fn finish(self) -> MoveSeq {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_hands_out_distinct_instances() {
        let mut b = CodeBuilder::new();
        let m0 = b.alloc(FuKind::Matcher);
        let m1 = b.alloc(FuKind::Matcher);
        let c0 = b.alloc(FuKind::Counter);
        assert_eq!(m0.fu_ref().index, 0);
        assert_eq!(m1.fu_ref().index, 1);
        assert_eq!(c0.fu_ref().index, 0);
    }

    #[test]
    fn reg_helper() {
        let b = CodeBuilder::new();
        assert_eq!(b.reg(3).to_string(), "regs0.r3");
        assert_eq!(b.reg(15).to_string(), "regs0.r15");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range() {
        let _ = CodeBuilder::new().reg(16);
    }

    #[test]
    fn guarded_moves() {
        let mut b = CodeBuilder::new();
        let cnt = b.fu(FuKind::Counter, 0);
        b.mv_if(cnt.guard("done"), 1u32, b.reg(0));
        b.mv_unless(cnt.guard("done"), 2u32, b.reg(1));
        let seq = b.finish();
        assert!(!seq.moves[0].guard.as_ref().unwrap().negate);
        assert!(seq.moves[1].guard.as_ref().unwrap().negate);
    }

    #[test]
    fn jumps_and_labels() {
        let mut b = CodeBuilder::new();
        b.label("top");
        let cnt = b.fu(FuKind::Counter, 0);
        b.mv(1u32, cnt.port("tinc"));
        b.jump_unless(cnt.guard("done"), "top");
        b.jump("top");
        let seq = b.finish();
        assert_eq!(seq.labels["top"], 0);
        assert!(seq.moves[1].is_control_transfer());
        assert!(seq.moves[1].guard.as_ref().unwrap().negate);
        assert!(seq.moves[2].guard.is_none());
    }

    #[test]
    fn fresh_labels_are_unique() {
        let mut b = CodeBuilder::new();
        let l1 = b.fresh_label("loop");
        let l2 = b.fresh_label("loop");
        assert_ne!(l1, l2);
    }

    #[test]
    fn len_tracks_moves_not_labels() {
        let mut b = CodeBuilder::new();
        assert!(b.is_empty());
        b.label("x");
        assert!(b.is_empty());
        b.mv(1u32, b.reg(0));
        assert_eq!(b.len(), 1);
    }
}
