//! The TACO code optimizer: bus scheduling and FU instance allocation.
//!
//! "Code optimization for TACO processors reduces in fact to well-known bus
//! scheduling and registry allocation problems.  We have to schedule move
//! instructions on the buses and to allocate registers to the operands of
//! the instructions."  (Paper, §3 and Fig. 3.)
//!
//! [`schedule`] turns a linear [`MoveSeq`] (the *non-optimized* one-move-
//! per-instruction form) into a packed [`Program`] for a concrete
//! [`MachineConfig`]:
//!
//! 1. **FU allocation** — virtual FU instances used by the code generator
//!    are folded onto the physical instances (`virtual index mod physical
//!    count`), so the same source code speeds up when the architecture gets
//!    more Matchers/Counters/Comparators;
//! 2. **list scheduling** — moves are packed into instruction words, at most
//!    one move per bus per cycle, honouring the TTA hazard rules below.
//!
//! Hazard model (all TACO FUs have single-cycle latency):
//!
//! | hazard | rule |
//! |---|---|
//! | trigger → result read | ≥ 1 cycle later |
//! | trigger → guard use   | ≥ 1 cycle later |
//! | operand write → trigger | same cycle allowed |
//! | trigger → operand rewrite | ≥ 1 cycle later (operands latch at trigger) |
//! | trigger → trigger (same FU) | ≥ 1 cycle later |
//! | result read → retrigger | same cycle allowed |
//! | register write → read | ≥ 1 cycle later |
//! | write → write (same port) | ≥ 1 cycle later |
//! | any move → control transfer | jump is the last cycle of its block |
//!
//! Scheduling is per basic block; blocks end at labels and after control
//! transfers, and never exchange moves.

use std::collections::BTreeMap;

use crate::fu::{FuRef, PortDir};
use crate::machine::MachineConfig;
use crate::program::{Instruction, Move, MoveSeq, PortRef, Program, Source};

/// Schedules `seq` onto the buses and FUs of `config`.
///
/// The returned program preserves the sequential semantics of `seq` (this is
/// checked by cross-simulation property tests in `taco-sim`).  Labels are
/// carried over, remapped to the instruction index where their block starts;
/// label sources are left unresolved so the caller can still inspect them.
pub fn schedule(seq: &MoveSeq, config: &MachineConfig) -> Program {
    let folded = fold_virtual_fus(seq, config);
    let starts = block_starts(&folded);

    let mut program = Program::new();
    let mut move_to_instr: BTreeMap<usize, usize> = BTreeMap::new();

    for (bi, &start) in starts.iter().enumerate() {
        let end = starts.get(bi + 1).copied().unwrap_or(folded.moves.len());
        let base = program.instructions.len();
        move_to_instr.insert(start, base);
        let block = &folded.moves[start..end];
        program.instructions.extend(schedule_block(block, config.buses()));
    }

    // Labels: a label at move index i maps to the instruction index where
    // that block begins (labels always sit on block boundaries).
    for (name, &mi) in &folded.labels {
        let target = move_to_instr.get(&mi).copied().unwrap_or(program.instructions.len());
        program.labels.insert(name.clone(), target);
    }
    program
}

/// Maps every virtual FU index onto a physical instance of `config`.
fn fold_virtual_fus(seq: &MoveSeq, config: &MachineConfig) -> MoveSeq {
    let fold = |fu: FuRef| -> FuRef { FuRef::new(fu.kind, fu.index % config.fu_count(fu.kind)) };
    let mut out = seq.clone();
    for mv in &mut out.moves {
        mv.dst.fu = fold(mv.dst.fu);
        if let Source::Port(p) = &mut mv.src {
            p.fu = fold(p.fu);
        }
        if let Some(g) = &mut mv.guard {
            g.fu = fold(g.fu);
        }
    }
    out
}

/// Indices at which basic blocks begin: move 0, every label position, and
/// the move after each control transfer.
fn block_starts(seq: &MoveSeq) -> Vec<usize> {
    let mut starts = vec![0usize];
    for &pos in seq.labels.values() {
        if pos < seq.moves.len() {
            starts.push(pos);
        }
    }
    for (i, mv) in seq.moves.iter().enumerate() {
        if mv.is_control_transfer() && i + 1 < seq.moves.len() {
            starts.push(i + 1);
        }
    }
    starts.sort_unstable();
    starts.dedup();
    starts
}

/// Dependence-edge accumulator state for one basic block.
#[derive(Default)]
struct HazardState {
    /// FU → local index of its latest trigger.
    last_trigger: BTreeMap<FuRef, usize>,
    /// Port → local index of its latest write.
    last_write: BTreeMap<PortRef, usize>,
    /// Port → reads since its last write (for write-after-read).
    reads_since_write: BTreeMap<PortRef, Vec<usize>>,
    /// FU → result reads since its last trigger (for retrigger WAR).
    result_reads: BTreeMap<FuRef, Vec<usize>>,
    /// FU → guard uses since its last trigger.
    guard_reads: BTreeMap<FuRef, Vec<usize>>,
}

/// List-schedules one basic block onto `buses` buses.
fn schedule_block(block: &[Move], buses: u8) -> Vec<Instruction> {
    if block.is_empty() {
        return Vec::new();
    }
    let buses = usize::from(buses);
    // edges[j] = (i, delay): move j must start >= cycle(i) + delay.
    let mut edges: Vec<Vec<(usize, u32)>> = vec![Vec::new(); block.len()];
    let mut st = HazardState::default();

    for (j, mv) in block.iter().enumerate() {
        let dep = |edges: &mut Vec<Vec<(usize, u32)>>, i: usize, d: u32| edges[j].push((i, d));

        // --- source side -------------------------------------------------
        if let Source::Port(p) = &mv.src {
            match p.dir() {
                PortDir::Result => {
                    if let Some(&i) = st.last_trigger.get(&p.fu) {
                        dep(&mut edges, i, 1);
                    }
                    st.result_reads.entry(p.fu).or_default().push(j);
                }
                PortDir::Both => {
                    if let Some(&i) = st.last_write.get(p) {
                        dep(&mut edges, i, 1);
                    }
                }
                // Parser/builder forbid reading operand/trigger ports.
                PortDir::Operand | PortDir::Trigger => {}
            }
            st.reads_since_write.entry(*p).or_default().push(j);
        }

        // --- guard -------------------------------------------------------
        if let Some(g) = &mv.guard {
            if let Some(&i) = st.last_trigger.get(&g.fu) {
                dep(&mut edges, i, 1);
            }
            st.guard_reads.entry(g.fu).or_default().push(j);
        }

        // --- destination side ---------------------------------------------
        let dst = mv.dst;
        match dst.dir() {
            PortDir::Both => {
                if let Some(&i) = st.last_write.get(&dst) {
                    dep(&mut edges, i, 1); // WAW
                }
                for &i in st.reads_since_write.get(&dst).into_iter().flatten() {
                    if i != j {
                        dep(&mut edges, i, 0); // WAR: write may share the read's cycle
                    }
                }
            }
            PortDir::Operand => {
                if let Some(&i) = st.last_trigger.get(&dst.fu) {
                    dep(&mut edges, i, 1); // operands latch at trigger
                }
                if let Some(&i) = st.last_write.get(&dst) {
                    dep(&mut edges, i, 1);
                }
            }
            PortDir::Trigger => {
                // Operands must be written no later than the trigger cycle.
                for port in dst.fu.kind.ports() {
                    if port.dir == PortDir::Operand {
                        let p = PortRef { fu: dst.fu, port: port.name };
                        if let Some(&i) = st.last_write.get(&p) {
                            dep(&mut edges, i, 0);
                        }
                    }
                }
                if let Some(&i) = st.last_trigger.get(&dst.fu) {
                    dep(&mut edges, i, 1); // serialize triggers
                }
                for &i in st.result_reads.get(&dst.fu).into_iter().flatten() {
                    if i != j {
                        dep(&mut edges, i, 0); // result consumed before overwrite
                    }
                }
                for &i in st.guard_reads.get(&dst.fu).into_iter().flatten() {
                    if i != j {
                        dep(&mut edges, i, 0);
                    }
                }
                st.last_trigger.insert(dst.fu, j);
                st.result_reads.remove(&dst.fu);
                st.guard_reads.remove(&dst.fu);
            }
            PortDir::Result => unreachable!("result ports are not writable"),
        }
        st.last_write.insert(dst, j);
        st.reads_since_write.remove(&dst);
    }

    // A control transfer ends the block: every earlier move must be placed
    // no later than the jump's cycle.
    if block.last().is_some_and(Move::is_control_transfer) {
        let j = block.len() - 1;
        for i in 0..j {
            edges[j].push((i, 0));
        }
    }

    // Greedy placement in program order.
    let mut cycle_of = vec![0usize; block.len()];
    let mut bus_load: Vec<usize> = Vec::new();
    for (j, _) in block.iter().enumerate() {
        let mut earliest = 0usize;
        for &(i, d) in &edges[j] {
            earliest = earliest.max(cycle_of[i] + d as usize);
        }
        let mut c = earliest;
        loop {
            if bus_load.len() <= c {
                bus_load.resize(c + 1, 0);
            }
            if bus_load[c] < buses {
                break;
            }
            c += 1;
        }
        bus_load[c] += 1;
        cycle_of[j] = c;
    }

    let n_cycles = cycle_of.iter().max().map_or(0, |m| m + 1);
    let mut instructions = vec![Instruction::empty(buses as u8); n_cycles];
    for (j, mv) in block.iter().enumerate() {
        let ins = &mut instructions[cycle_of[j]];
        let slot = ins
            .slots
            .iter_mut()
            .find(|s| s.is_none())
            .expect("bus load accounting guarantees a free slot");
        *slot = Some(mv.clone());
    }
    instructions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CodeBuilder;
    use crate::fu::FuKind;

    /// Fig. 3's expression `a = (b*2 + c)/4` as TACO moves: shift-left for
    /// the multiply, counter-add for the sum, shift-right for the divide.
    fn fig3_moves() -> MoveSeq {
        let mut b = CodeBuilder::new();
        let shl = b.alloc(FuKind::Shifter);
        let cnt = b.alloc(FuKind::Counter);
        // b is in r0, c in r1; result goes to r2.
        b.mv(1u32, shl.port("amount"));
        b.mv(b.reg(0), shl.port("tshl")); // r5 = b * 2
        b.mv(shl.port("r"), cnt.port("tset"));
        b.mv(b.reg(1), cnt.port("tadd")); // r6 = r5 + c
        b.mv(2u32, shl.port("amount"));
        b.mv(cnt.port("r"), shl.port("tshr")); // r7 = r6 / 4
        b.mv(shl.port("r"), b.reg(2));
        b.finish()
    }

    #[test]
    fn one_bus_schedule_is_sequential_length() {
        let seq = fig3_moves();
        let prog = schedule(&seq, &MachineConfig::one_bus_one_fu());
        // One bus: one move per cycle, no packing possible.
        assert_eq!(prog.instructions.len(), seq.len());
        assert_eq!(prog.move_count(), seq.len());
    }

    #[test]
    fn more_buses_shorten_the_schedule() {
        let seq = fig3_moves();
        let one = schedule(&seq, &MachineConfig::one_bus_one_fu()).instructions.len();
        let three = schedule(&seq, &MachineConfig::three_bus_one_fu()).instructions.len();
        assert!(three < one, "3-bus ({three}) should beat 1-bus ({one})");
        assert_eq!(schedule(&seq, &MachineConfig::three_bus_one_fu()).move_count(), seq.len());
    }

    #[test]
    fn result_read_is_one_cycle_after_trigger() {
        let mut b = CodeBuilder::new();
        let cnt = b.fu(FuKind::Counter, 0);
        b.mv(5u32, cnt.port("tset"));
        b.mv(cnt.port("r"), b.reg(0));
        let prog = schedule(&b.finish(), &MachineConfig::new(4));
        // The read cannot share the trigger's cycle.
        assert_eq!(prog.instructions.len(), 2);
    }

    #[test]
    fn operand_and_trigger_may_share_a_cycle() {
        let mut b = CodeBuilder::new();
        let sh = b.fu(FuKind::Shifter, 0);
        b.mv(1u32, sh.port("amount"));
        b.mv(4u32, sh.port("tshl"));
        let prog = schedule(&b.finish(), &MachineConfig::new(4));
        assert_eq!(prog.instructions.len(), 1);
        assert_eq!(prog.instructions[0].move_count(), 2);
    }

    #[test]
    fn operand_rewrite_waits_for_trigger_to_latch() {
        let mut b = CodeBuilder::new();
        let sh = b.fu(FuKind::Shifter, 0);
        b.mv(1u32, sh.port("amount"));
        b.mv(4u32, sh.port("tshl"));
        b.mv(2u32, sh.port("amount")); // for a later op; must not corrupt the first
        let prog = schedule(&b.finish(), &MachineConfig::new(4));
        assert_eq!(prog.instructions.len(), 2);
    }

    #[test]
    fn independent_fus_run_in_parallel() {
        let mut b = CodeBuilder::new();
        let c0 = b.fu(FuKind::Counter, 0);
        let c1 = b.fu(FuKind::Counter, 1);
        let c2 = b.fu(FuKind::Counter, 2);
        b.mv(1u32, c0.port("tset"));
        b.mv(2u32, c1.port("tset"));
        b.mv(3u32, c2.port("tset"));
        // Three physical counters: all three triggers fit in one cycle.
        let wide = schedule(&b.clone().finish(), &MachineConfig::three_bus_three_fu());
        assert_eq!(wide.instructions.len(), 1);
        // One physical counter: virtual 0,1,2 all fold to instance 0 and
        // serialize.
        let narrow = schedule(&b.finish(), &MachineConfig::three_bus_one_fu());
        assert_eq!(narrow.instructions.len(), 3);
    }

    #[test]
    fn guard_waits_for_its_trigger() {
        let mut b = CodeBuilder::new();
        let cmp = b.fu(FuKind::Comparator, 0);
        b.mv(7u32, cmp.port("refv"));
        b.mv(7u32, cmp.port("t"));
        b.mv_if(cmp.guard("eq"), 1u32, b.reg(0));
        let prog = schedule(&b.finish(), &MachineConfig::new(4));
        // refv+t in cycle 0; the guarded move must wait for the eq bit.
        assert_eq!(prog.instructions.len(), 2);
    }

    #[test]
    fn jump_is_last_cycle_of_its_block() {
        let mut b = CodeBuilder::new();
        b.label("top");
        let cnt = b.fu(FuKind::Counter, 0);
        b.mv(1u32, cnt.port("tinc"));
        b.mv(2u32, b.reg(0));
        b.mv(3u32, b.reg(1));
        b.jump("top");
        let prog = schedule(&b.finish(), &MachineConfig::new(4));
        let last = prog.instructions.last().unwrap();
        assert!(last.moves().any(|m| m.is_control_transfer()));
        assert_eq!(prog.labels["top"], 0);
    }

    #[test]
    fn labels_split_blocks_and_remap() {
        let mut b = CodeBuilder::new();
        b.mv(1u32, b.reg(0));
        b.mv(2u32, b.reg(1));
        b.label("middle");
        b.mv(3u32, b.reg(2));
        b.jump("middle");
        let prog = schedule(&b.finish(), &MachineConfig::new(4));
        // Block 1 (two independent reg writes) packs into 1 instruction;
        // "middle" points at the next instruction.
        assert_eq!(prog.labels["middle"], 1);
    }

    #[test]
    fn trailing_label_maps_past_the_end() {
        let mut b = CodeBuilder::new();
        b.mv(1u32, b.reg(0));
        b.label("end");
        let prog = schedule(&b.finish(), &MachineConfig::new(2));
        assert_eq!(prog.labels["end"], prog.instructions.len());
    }

    #[test]
    fn same_register_writes_keep_order() {
        let mut b = CodeBuilder::new();
        b.mv(1u32, b.reg(0));
        b.mv(2u32, b.reg(0));
        let prog = schedule(&b.finish(), &MachineConfig::new(4));
        assert_eq!(prog.instructions.len(), 2);
        // Final value must be from the second write.
        let last = prog.instructions[1].slots[0].as_ref().unwrap();
        assert_eq!(last.src, Source::Imm(2));
    }

    #[test]
    fn register_read_after_write_waits_a_cycle() {
        let mut b = CodeBuilder::new();
        b.mv(1u32, b.reg(0));
        b.mv(b.reg(0), b.reg(1));
        let prog = schedule(&b.finish(), &MachineConfig::new(4));
        assert_eq!(prog.instructions.len(), 2);
    }

    #[test]
    fn empty_sequence_schedules_to_nothing() {
        let prog = schedule(&MoveSeq::new(), &MachineConfig::default());
        assert!(prog.instructions.is_empty());
    }

    #[test]
    fn bus_capacity_limits_parallelism() {
        let mut b = CodeBuilder::new();
        // Six fully independent register writes.
        for i in 0..6 {
            b.mv(u32::from(i), b.reg(i));
        }
        let seq = b.finish();
        assert_eq!(schedule(&seq, &MachineConfig::new(1)).instructions.len(), 6);
        assert_eq!(schedule(&seq, &MachineConfig::new(2)).instructions.len(), 3);
        assert_eq!(schedule(&seq, &MachineConfig::new(3)).instructions.len(), 2);
        assert_eq!(schedule(&seq, &MachineConfig::new(6)).instructions.len(), 1);
    }
}
