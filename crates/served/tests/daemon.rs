//! Loopback integration tests for the `taco-served` daemon.
//!
//! The contract under test is the tentpole promise of the wire API: a
//! batch of the twelve extended Table 1 cells answers **byte-identically**
//! to the golden fixture (`crates/core/tests/golden/table1.json`) whether
//! the daemon computes cold, answers from its warm in-memory cache, or is
//! restarted and answers from the persisted snapshot; over-capacity
//! submissions get a structured `busy` error (never a hang or a panic);
//! and shutdown drains in-flight work before acknowledging.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::thread;

use taco_core::api::{
    table1_cell_json, ApiErrorCode, ApiRequest, ApiResponse, ConfigSpec, EvalSpec,
};
use taco_core::{ArchConfig, Constraints, LineRate, RoutingTableKind, SweepSpec};
use taco_served::{open_request, request_lines, Server, ServerConfig};

fn temp_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("taco-served-{test}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn start(config: ServerConfig) -> (SocketAddr, thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(config).expect("bind loopback");
    let addr = server.local_addr();
    (addr, thread::spawn(move || server.run()))
}

fn shut_down(addr: SocketAddr) -> Option<u64> {
    let lines = request_lines(addr, &ApiRequest::Shutdown.to_json()).expect("shutdown");
    match ApiResponse::from_json(&lines[0]).expect("parse ack") {
        ApiResponse::ShutdownAck { persisted } => persisted,
        other => panic!("expected shutdown_ack, got {other:?}"),
    }
}

fn status(addr: SocketAddr) -> taco_core::api::StatusInfo {
    let lines = request_lines(addr, &ApiRequest::Status.to_json()).expect("status");
    match ApiResponse::from_json(&lines[0]).expect("parse status") {
        ApiResponse::Status(info) => info,
        other => panic!("expected status_result, got {other:?}"),
    }
}

/// The twelve Table 1 cells as wire requests, in the paper's order with
/// the PATRICIA rows appended (the golden fixture's line order).
fn table1_requests() -> Vec<String> {
    ArchConfig::table1_cells()
        .into_iter()
        .map(|config| {
            let spec =
                ConfigSpec::from_config(&config).expect("every Table 1 cell is wire-expressible");
            ApiRequest::Eval(EvalSpec::new(spec)).to_json()
        })
        .collect()
}

fn submit_batch(addr: SocketAddr, requests: &[String]) -> Vec<String> {
    requests
        .iter()
        .map(|request| {
            let mut lines = request_lines(addr, request).expect("eval response");
            assert_eq!(lines.len(), 1, "an eval answers with exactly one line");
            lines.remove(0)
        })
        .collect()
}

#[test]
fn twelve_cell_batch_matches_golden_cold_and_from_persisted_snapshot() {
    let dir = temp_dir("golden");
    let snapshot = dir.join("cache.snapshot");
    let config = ServerConfig { snapshot: Some(snapshot.clone()), ..ServerConfig::default() };
    let (addr, handle) = start(config.clone());

    let requests = table1_requests();
    let cold = submit_batch(addr, &requests);

    // Every cold response's cell must be byte-identical to the golden
    // fixture's corresponding line.
    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../core/tests/golden/table1.json");
    let golden = std::fs::read_to_string(&golden_path).expect("golden Table 1 fixture");
    let golden_lines: Vec<&str> = golden.lines().collect();
    assert_eq!(golden_lines.len(), cold.len());
    for (response, fixture_cell) in cold.iter().zip(&golden_lines) {
        match ApiResponse::from_json(response).expect("parse eval result") {
            ApiResponse::EvalResult(report) => {
                assert_eq!(&table1_cell_json(&report), fixture_cell);
            }
            other => panic!("expected eval_result, got {other:?}"),
        }
    }

    // The batch was computed cold: twelve lookups, twelve misses.
    let cold_status = status(addr);
    assert_eq!(
        (cold_status.cache_entries, cold_status.cache_hits, cold_status.cache_misses),
        (12, 0, 12)
    );

    // A warm re-submission in the same process is answered from memory,
    // byte-identically.
    assert_eq!(submit_batch(addr, &requests), cold);
    assert_eq!(status(addr).cache_hits, 12);

    // Graceful shutdown persists all twelve entries...
    assert_eq!(shut_down(addr), Some(12));
    handle.join().expect("server thread").expect("clean exit");

    // ...and a restarted daemon answers the same batch from the snapshot:
    // byte-identical responses, zero misses.
    let (addr, handle) = start(config);
    assert_eq!(submit_batch(addr, &requests), cold, "snapshot-warmed responses drifted");
    let warm_status = status(addr);
    assert_eq!(
        (warm_status.cache_entries, warm_status.cache_hits, warm_status.cache_misses),
        (12, 12, 0)
    );
    assert_eq!(shut_down(addr), Some(12));
    handle.join().expect("server thread").expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_replay_over_the_wire_matches_in_process_replay_byte_for_byte() {
    use taco_core::{EvalRequest, FlowTrace, TraceGen, TraceRef};

    let dir = temp_dir("trace");
    let path = dir.join("reference.trace");
    TraceGen::generate(404, 80, 12, 8).write(&path).expect("write trace");
    let trace = FlowTrace::read(&path).expect("read trace back");

    // The in-process reference replay of the same on-disk trace.
    let local = EvalRequest::new(ArchConfig::three_bus_one_fu(RoutingTableKind::Cam))
        .entries(8)
        .flow_trace(std::sync::Arc::new(trace.clone()))
        .run();
    let local_json = local.scenario.as_ref().expect("trace metrics").to_json();

    let (addr, handle) = start(ServerConfig::default());
    let mut spec = EvalSpec::new(ConfigSpec::new(RoutingTableKind::Cam, 3, 1));
    spec.entries = 8;

    // Inline submission — the wire form `taco-cli submit --trace` sends.
    spec.trace = Some(TraceRef::inline(&trace));
    let wire_json = |spec: &EvalSpec| {
        let lines = request_lines(addr, &ApiRequest::Eval(spec.clone()).to_json()).expect("eval");
        match ApiResponse::from_json(&lines[0]).expect("parse eval result") {
            ApiResponse::EvalResult(report) => {
                report.scenario.as_ref().expect("trace metrics over the wire").to_json()
            }
            other => panic!("expected eval_result, got {other:?}"),
        }
    };
    assert_eq!(wire_json(&spec), local_json, "inline trace replay drifted from in-process");

    // A server-side path reference resolves to the same bytes.
    spec.trace = Some(TraceRef::Path(path.display().to_string()));
    assert_eq!(wire_json(&spec), local_json, "path trace replay drifted from in-process");

    shut_down(addr);
    handle.join().expect("server thread").expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_and_missing_wire_traces_are_structured_bad_requests() {
    use taco_core::TraceRef;

    let (addr, handle) = start(ServerConfig::default());
    let mut spec = EvalSpec::new(ConfigSpec::new(RoutingTableKind::Cam, 3, 1));
    spec.entries = 8;

    let expect_bad_request = |spec: &EvalSpec, needle: &str| {
        let lines = request_lines(addr, &ApiRequest::Eval(spec.clone()).to_json()).expect("eval");
        match ApiResponse::from_json(&lines[0]).expect("parse error") {
            ApiResponse::Error(e) => {
                assert_eq!(e.code, ApiErrorCode::BadRequest);
                assert!(e.message.contains(needle), "{needle:?} not in {:?}", e.message);
            }
            other => panic!("expected error, got {other:?}"),
        }
    };

    // Bad hex in an inline trace.
    spec.trace = Some(TraceRef::Inline("zz".into()));
    expect_bad_request(&spec, "trace");

    // Valid hex that is not a trace body.
    spec.trace = Some(TraceRef::Inline("00ff".into()));
    expect_bad_request(&spec, "trace");

    // A server-side path that does not exist.
    spec.trace = Some(TraceRef::Path("/nonexistent/taco.trace".into()));
    expect_bad_request(&spec, "trace");

    shut_down(addr);
    handle.join().expect("server thread").expect("clean exit");
}

#[test]
fn over_capacity_submissions_get_a_structured_busy_error() {
    // One job slot and one worker thread: while the sweep below runs, any
    // second submission must bounce with `busy` — and succeed on retry
    // once the slot drains.
    let config = ServerConfig { max_pending: 1, threads: 1, ..ServerConfig::default() };
    let (addr, handle) = start(config);

    // Two sequential-scan points over a large table: the second point
    // simulates for long enough (hundreds of milliseconds in a debug
    // build) that a loopback submission races well inside its window.
    let sweep = ApiRequest::Sweep {
        spec: SweepSpec {
            buses: vec![1, 3],
            replication: vec![1],
            kinds: vec![RoutingTableKind::Sequential],
            entries: 4096,
            workload: None,
            faults: None,
            trace: None,
            ..SweepSpec::default()
        },
        rate: LineRate::TEN_GBE,
        constraints: Constraints::default(),
        shard: None,
    };
    let mut spec = EvalSpec::new(ConfigSpec::new(RoutingTableKind::Cam, 3, 1));
    spec.entries = 8;
    let eval = ApiRequest::Eval(spec).to_json();

    let mut stream = open_request(addr, &sweep.to_json()).expect("open sweep");
    let mut first = String::new();
    std::io::BufRead::read_line(&mut stream, &mut first).expect("first progress line");
    match ApiResponse::from_json(first.trim_end()).expect("parse progress") {
        ApiResponse::SweepPoint { index: 0, total: 2, .. } => {}
        other => panic!("expected the first sweep_point, got {other:?}"),
    }

    // The slot is held until the sweep's client has the full response, so
    // this submission must be rejected — structured, immediate, no hang.
    let busy = request_lines(addr, &eval).expect("busy response");
    assert_eq!(busy.len(), 1);
    match ApiResponse::from_json(&busy[0]).expect("parse busy") {
        ApiResponse::Error(e) => assert_eq!(e.code, ApiErrorCode::Busy, "{e}"),
        other => panic!("expected busy error, got {other:?}"),
    }

    // Drain the sweep: one more progress line, then the final result with
    // both reports in sweep order.
    let rest: Vec<String> =
        std::io::BufRead::lines(stream).collect::<Result<_, _>>().expect("drain sweep");
    assert_eq!(rest.len(), 2, "one more sweep_point and the sweep_result: {rest:?}");
    match ApiResponse::from_json(&rest[1]).expect("parse sweep result") {
        ApiResponse::SweepResult { reports, .. } => assert_eq!(reports.len(), 2),
        other => panic!("expected sweep_result, got {other:?}"),
    }

    // The slot has drained; the same eval is admitted now.
    let retried = request_lines(addr, &eval).expect("retried eval");
    match ApiResponse::from_json(&retried[0]).expect("parse retried") {
        ApiResponse::EvalResult(report) => assert_eq!(report.table_entries, 8),
        other => panic!("expected eval_result after retry, got {other:?}"),
    }

    shut_down(addr);
    handle.join().expect("server thread").expect("clean exit");
}

#[test]
fn corrupt_snapshots_are_discarded_not_fatal() {
    let dir = temp_dir("corrupt");
    let snapshot = dir.join("cache.snapshot");
    std::fs::write(&snapshot, "not a snapshot at all\n").expect("write garbage");
    let config = ServerConfig { snapshot: Some(snapshot.clone()), ..ServerConfig::default() };
    let (addr, handle) = start(config);

    // The daemon must come up serving, with an empty cache.
    assert_eq!(status(addr).cache_entries, 0);

    // And shutdown replaces the garbage with a valid (empty) snapshot.
    assert_eq!(shut_down(addr), Some(0));
    handle.join().expect("server thread").expect("clean exit");
    let rewritten = std::fs::read_to_string(&snapshot).expect("rewritten snapshot");
    assert!(rewritten.starts_with("taco-evalcache-snapshot v1"), "{rewritten}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_drains_in_flight_work_before_acknowledging() {
    let dir = temp_dir("drain");
    let snapshot = dir.join("cache.snapshot");
    let config = ServerConfig {
        max_pending: 1,
        threads: 1,
        snapshot: Some(snapshot.clone()),
        ..ServerConfig::default()
    };
    let (addr, handle) = start(config);

    let sweep = ApiRequest::Sweep {
        spec: SweepSpec {
            buses: vec![3],
            replication: vec![1],
            kinds: vec![RoutingTableKind::Cam, RoutingTableKind::BalancedTree],
            entries: 8,
            workload: None,
            faults: None,
            trace: None,
            ..SweepSpec::default()
        },
        rate: LineRate::TEN_GBE,
        constraints: Constraints::default(),
        shard: None,
    };
    let stream = open_request(addr, &sweep.to_json()).expect("open sweep");

    // Shutdown while the sweep is in flight: the ack only arrives after
    // the sweep's response is complete and its two points persisted.
    assert_eq!(shut_down(addr), Some(2));

    // The sweep client still holds a complete, well-formed response.
    let lines: Vec<String> =
        std::io::BufRead::lines(stream).collect::<Result<_, _>>().expect("sweep response");
    assert_eq!(lines.len(), 3, "two sweep_points and a sweep_result: {lines:?}");
    match ApiResponse::from_json(&lines[2]).expect("parse sweep result") {
        ApiResponse::SweepResult { admitted, reports } => {
            assert_eq!(reports.len(), 2);
            assert!(!admitted.is_empty(), "a 2 W budget admits the CAM cell");
        }
        other => panic!("expected sweep_result, got {other:?}"),
    }

    handle.join().expect("server thread").expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}
