//! Wire-framing robustness and v2 session semantics, exercised over real
//! loopback sockets against the event-loop daemon.
//!
//! Every test here is adversarial about *transport* behaviour — bytes
//! arriving one at a time, several frames in one TCP segment, frames that
//! never end, clients that vanish mid-request — because the event loop's
//! correctness lives exactly in those seams.  The golden-byte protocol
//! assertions live in `daemon.rs`; this file may start servers with
//! non-default limits.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

use taco_core::api::{ApiErrorCode, ConfigSpec, EvalSpec};
use taco_core::{
    explore, ApiRequest, ApiResponse, Constraints, EvalCache, LineRate, RoutingTableKind, StepMode,
    SweepSpec, WireRequest, WireResponse,
};
use taco_served::{request_lines, sharded_sweep, Server, ServerConfig, Session};

fn start(config: ServerConfig) -> (SocketAddr, thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(config).expect("bind loopback");
    let addr = server.local_addr();
    (addr, thread::spawn(move || server.run()))
}

fn shut_down(addr: SocketAddr) {
    let lines = request_lines(addr, &ApiRequest::Shutdown.to_json()).expect("shutdown");
    match ApiResponse::from_json(&lines[0]).expect("parse ack") {
        ApiResponse::ShutdownAck { .. } => {}
        other => panic!("expected shutdown_ack, got {other:?}"),
    }
}

fn small_eval() -> ApiRequest {
    let mut spec = EvalSpec::new(ConfigSpec::new(RoutingTableKind::Cam, 3, 1));
    spec.entries = 8;
    ApiRequest::Eval(spec)
}

fn tiny_sweep() -> SweepSpec {
    SweepSpec {
        buses: vec![1, 3],
        replication: vec![1],
        kinds: vec![RoutingTableKind::Cam, RoutingTableKind::BalancedTree],
        entries: 8,
        workload: None,
        faults: None,
        trace: None,
        ..SweepSpec::default()
    }
}

// ---------------------------------------------------------------------------
// Partial and pipelined frames.
// ---------------------------------------------------------------------------

#[test]
fn v1_request_split_into_single_byte_writes_is_reassembled() {
    let (addr, handle) = start(ServerConfig::default());
    let line = format!("{}\n", ApiRequest::Status.to_json());
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    for byte in line.as_bytes() {
        stream.write_all(std::slice::from_ref(byte)).expect("write byte");
        stream.flush().expect("flush");
        // A tiny pause between bytes forces the server through many
        // short reads for one frame.
        thread::sleep(Duration::from_micros(200));
    }
    let lines: Vec<String> =
        BufReader::new(stream).lines().collect::<Result<_, _>>().expect("response");
    assert_eq!(lines.len(), 1);
    match ApiResponse::from_json(&lines[0]).expect("parse") {
        ApiResponse::Status(info) => assert_eq!(info.in_flight, 0),
        other => panic!("expected status_result, got {other:?}"),
    }
    shut_down(addr);
    handle.join().expect("join").expect("clean exit");
}

#[test]
fn v1_pipelined_frames_in_one_segment_answer_only_the_first() {
    let (addr, handle) = start(ServerConfig::default());
    // Two status frames in a single write: v1 is one-shot by contract, so
    // the daemon answers the first and closes; the stowaway is discarded.
    let segment = format!("{0}\n{0}\n", ApiRequest::Status.to_json());
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(segment.as_bytes()).expect("write segment");
    stream.flush().expect("flush");
    let lines: Vec<String> =
        BufReader::new(stream).lines().collect::<Result<_, _>>().expect("response");
    assert_eq!(lines.len(), 1, "one-shot dialect must answer exactly once: {lines:?}");
    assert!(matches!(ApiResponse::from_json(&lines[0]).expect("parse"), ApiResponse::Status(_)));
    shut_down(addr);
    handle.join().expect("join").expect("clean exit");
}

#[test]
fn v2_pipelined_frames_in_one_segment_are_all_answered() {
    let (addr, handle) = start(ServerConfig::default());
    let segment = format!(
        "{}\n{}\n{}\n",
        ApiRequest::Status.to_json_v2(7),
        small_eval().to_json_v2(8),
        ApiRequest::Status.to_json_v2(9),
    );
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(segment.as_bytes()).expect("write segment");
    stream.flush().expect("flush");
    // Half-close the write side so the session drains to EOF after the
    // three answers.
    stream.shutdown(Shutdown::Write).expect("half-close");
    let lines: Vec<String> =
        BufReader::new(stream).lines().collect::<Result<_, _>>().expect("responses");
    assert_eq!(lines.len(), 3, "{lines:?}");
    let mut ids: Vec<Option<u64>> =
        lines.iter().map(|l| WireResponse::from_json(l).expect("parse").id).collect();
    ids.sort();
    assert_eq!(ids, vec![Some(7), Some(8), Some(9)]);
    shut_down(addr);
    handle.join().expect("join").expect("clean exit");
}

// ---------------------------------------------------------------------------
// Oversized frames.
// ---------------------------------------------------------------------------

#[test]
fn oversized_terminated_frame_is_rejected_with_a_structured_error() {
    let (addr, handle) = start(ServerConfig { max_frame: 1 << 10, ..ServerConfig::default() });
    let mut stream = TcpStream::connect(addr).expect("connect");
    let frame = format!("{{\"padding\":\"{}\"}}\n", "x".repeat(4 << 10));
    stream.write_all(frame.as_bytes()).expect("write");
    stream.flush().expect("flush");
    let lines: Vec<String> =
        BufReader::new(stream).lines().collect::<Result<_, _>>().expect("response");
    assert_eq!(lines.len(), 1);
    match ApiResponse::from_json(&lines[0]).expect("parse") {
        ApiResponse::Error(e) => {
            assert_eq!(e.code, ApiErrorCode::BadRequest);
            assert!(e.message.contains("byte limit"), "{}", e.message);
        }
        other => panic!("expected error, got {other:?}"),
    }
    shut_down(addr);
    handle.join().expect("join").expect("clean exit");
}

#[test]
fn endless_unterminated_frame_is_rejected_before_the_newline() {
    let (addr, handle) = start(ServerConfig { max_frame: 1 << 10, ..ServerConfig::default() });
    let mut stream = TcpStream::connect(addr).expect("connect");
    // No newline at all: the daemon must bound its buffer, not wait
    // forever for a terminator that never comes.
    let endless = "y".repeat(64 << 10);
    // The server may close mid-write once the bound trips; both a clean
    // write and a pipe error are acceptable here.
    let _ = stream.write_all(endless.as_bytes());
    let _ = stream.flush();
    let mut response = String::new();
    BufReader::new(&stream).read_line(&mut response).expect("read error line");
    match ApiResponse::from_json(response.trim_end()).expect("parse") {
        ApiResponse::Error(e) => assert_eq!(e.code, ApiErrorCode::BadRequest),
        other => panic!("expected error, got {other:?}"),
    }
    shut_down(addr);
    handle.join().expect("join").expect("clean exit");
}

// ---------------------------------------------------------------------------
// Mid-request disconnects.
// ---------------------------------------------------------------------------

#[test]
fn disconnect_mid_frame_leaves_the_daemon_serving() {
    let (addr, handle) = start(ServerConfig::default());
    // Half a frame, then vanish.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"{\"api_version\":\"v1\",\"ki").expect("partial write");
    stream.flush().expect("flush");
    drop(stream);
    // And again with an even shorter fragment, mid-member-name.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"{\"api_ver").expect("partial write");
    drop(stream);
    // The daemon shrugs both off and keeps answering.
    let lines = request_lines(addr, &ApiRequest::Status.to_json()).expect("status");
    assert!(matches!(ApiResponse::from_json(&lines[0]).expect("parse"), ApiResponse::Status(_)));
    shut_down(addr);
    handle.join().expect("join").expect("clean exit");
}

#[test]
fn disconnect_with_a_job_in_flight_does_not_wedge_the_slot() {
    let (addr, handle) =
        start(ServerConfig { max_pending: 1, threads: 1, ..ServerConfig::default() });
    // Submit a sweep, then disappear without reading a single byte.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let sweep = ApiRequest::Sweep {
        spec: tiny_sweep(),
        rate: LineRate::TEN_GBE,
        constraints: Constraints::default(),
        shard: None,
    };
    stream.write_all(format!("{}\n", sweep.to_json()).as_bytes()).expect("write");
    stream.flush().expect("flush");
    drop(stream);
    // The orphaned job must still drain and release its only slot;
    // eventually a fresh submission is admitted again.  (The probe point
    // is *outside* the sweep grid — entries differ — so it can only be
    // answered by taking the job slot, never via the inline cache path.)
    let mut probe = EvalSpec::new(ConfigSpec::new(RoutingTableKind::Cam, 3, 1));
    probe.entries = 16;
    let probe = ApiRequest::Eval(probe).to_json();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let lines = request_lines(addr, &probe).expect("eval");
        match ApiResponse::from_json(&lines[0]).expect("parse") {
            ApiResponse::EvalResult(_) => break,
            ApiResponse::Error(e) if e.code == ApiErrorCode::Busy => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "slot never freed after client disconnect"
                );
                thread::sleep(Duration::from_millis(20));
            }
            other => panic!("expected eval_result or busy, got {other:?}"),
        }
    }
    shut_down(addr);
    handle.join().expect("join").expect("clean exit");
}

// ---------------------------------------------------------------------------
// v2 session semantics.
// ---------------------------------------------------------------------------

#[test]
fn v2_sweeps_interleave_on_one_session_with_correct_ids() {
    let (addr, handle) = start(ServerConfig { max_pending: 4, ..ServerConfig::default() });
    let mut session = Session::connect(addr).expect("connect");
    let sweep = ApiRequest::Sweep {
        spec: tiny_sweep(),
        rate: LineRate::TEN_GBE,
        constraints: Constraints::default(),
        shard: None,
    };
    let first = session.send(&sweep).expect("send first");
    let second = session.send(&sweep).expect("send second");
    assert_ne!(first, second);
    let mut points = std::collections::HashMap::new();
    let mut results = std::collections::HashMap::new();
    while results.len() < 2 {
        let wire = session.recv().expect("recv");
        let id = wire.id.expect("every v2 response echoes an id");
        assert!(id == first || id == second, "unknown id {id}");
        match wire.response {
            ApiResponse::SweepPoint { total, .. } => {
                assert_eq!(total, 4);
                *points.entry(id).or_insert(0usize) += 1;
            }
            ApiResponse::SweepResult { reports, .. } => {
                assert_eq!(reports.len(), 4);
                results.insert(id, reports);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    // Both streams completed on one connection, each with its own four
    // progress lines, and the payloads agree.
    assert_eq!(points.get(&first), Some(&4));
    assert_eq!(points.get(&second), Some(&4));
    assert_eq!(results[&first], results[&second]);
    shut_down(addr);
    handle.join().expect("join").expect("clean exit");
}

#[test]
fn v2_session_survives_malformed_frames_and_requires_ids() {
    let (addr, handle) = start(ServerConfig::default());
    let mut stream = TcpStream::connect(addr).expect("connect");
    // Establish the dialect with a well-formed v2 request.
    stream.write_all(format!("{}\n", ApiRequest::Status.to_json_v2(1)).as_bytes()).expect("write");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("first response");
    assert_eq!(WireResponse::from_json(line.trim_end()).expect("parse").id, Some(1));

    // A malformed frame carrying a salvageable id: the error echoes it.
    stream.write_all(b"{\"id\":42,\"garbage\":true}\n").expect("write");
    line.clear();
    reader.read_line(&mut line).expect("error response");
    let wire = WireResponse::from_json(line.trim_end()).expect("parse");
    assert_eq!(wire.id, Some(42));
    assert!(matches!(wire.response, ApiResponse::Error(_)));

    // A v1-shaped (id-less) frame mid-session: error with a null id.
    stream.write_all(format!("{}\n", ApiRequest::Status.to_json()).as_bytes()).expect("write");
    line.clear();
    reader.read_line(&mut line).expect("error response");
    let wire = WireResponse::from_json(line.trim_end()).expect("parse");
    assert_eq!(wire.id, None);
    match wire.response {
        ApiResponse::Error(e) => assert_eq!(e.code, ApiErrorCode::BadRequest),
        other => panic!("expected error, got {other:?}"),
    }

    // The session is still alive after both violations.
    stream.write_all(format!("{}\n", ApiRequest::Status.to_json_v2(2)).as_bytes()).expect("write");
    line.clear();
    reader.read_line(&mut line).expect("final response");
    assert_eq!(WireResponse::from_json(line.trim_end()).expect("parse").id, Some(2));
    shut_down(addr);
    handle.join().expect("join").expect("clean exit");
}

// ---------------------------------------------------------------------------
// step_mode through the daemon.
// ---------------------------------------------------------------------------

#[test]
fn unknown_step_mode_is_a_structured_bad_request() {
    let (addr, handle) = start(ServerConfig::default());
    let valid =
        ApiRequest::Eval(EvalSpec::new(ConfigSpec::new(RoutingTableKind::Cam, 3, 1))).to_json();
    let request =
        format!("{},\"step_mode\":\"speculative\"}}", valid.strip_suffix('}').expect("object"));
    let lines = request_lines(addr, &request).expect("response");
    match ApiResponse::from_json(&lines[0]).expect("parse") {
        ApiResponse::Error(e) => {
            assert_eq!(e.code, ApiErrorCode::BadRequest);
            assert!(e.message.contains("speculative"), "{}", e.message);
        }
        other => panic!("expected error, got {other:?}"),
    }
    shut_down(addr);
    handle.join().expect("join").expect("clean exit");
}

#[test]
fn interpretive_evals_bypass_the_memo_end_to_end() {
    let (addr, handle) = start(ServerConfig::default());
    let mut spec = EvalSpec::new(ConfigSpec::new(RoutingTableKind::Cam, 3, 1));
    spec.entries = 8;
    spec.step_mode = StepMode::Interpretive;
    let interpretive = ApiRequest::Eval(spec.clone()).to_json();
    let first = request_lines(addr, &interpretive).expect("first interpretive");
    let second = request_lines(addr, &interpretive).expect("second interpretive");
    // Same numbers both times — interpretive stepping is a cross-check
    // path, not a different model.
    assert_eq!(first, second);
    let status = |addr| {
        let lines = request_lines(addr, &ApiRequest::Status.to_json()).expect("status");
        match ApiResponse::from_json(&lines[0]).expect("parse") {
            ApiResponse::Status(info) => info,
            other => panic!("expected status_result, got {other:?}"),
        }
    };
    let after_interpretive = status(addr);
    assert_eq!(after_interpretive.cache_entries, 0, "interpretive results must never be memoised");
    assert_eq!(after_interpretive.cache_hits, 0);
    assert_eq!(after_interpretive.cache_misses, 2, "each interpretive run recounts as a miss");

    // The compiled flavour of the same point memoises as usual.
    spec.step_mode = StepMode::Compiled;
    let compiled = ApiRequest::Eval(spec).to_json();
    request_lines(addr, &compiled).expect("cold compiled");
    request_lines(addr, &compiled).expect("warm compiled");
    let after_compiled = status(addr);
    assert_eq!(after_compiled.cache_entries, 1);
    assert_eq!(after_compiled.cache_hits, 1);
    assert_eq!(after_compiled.cache_misses, 3);
    shut_down(addr);
    handle.join().expect("join").expect("clean exit");
}

// ---------------------------------------------------------------------------
// Sharded sweeps.
// ---------------------------------------------------------------------------

#[test]
fn sharded_sweep_matches_the_local_explorer_and_pools_caches() {
    let spec = tiny_sweep();
    let constraints = Constraints::default();
    let local = explore(&spec, LineRate::TEN_GBE, &constraints);

    let (a, ha) = start(ServerConfig::default());
    let (b, hb) = start(ServerConfig::default());
    let merged =
        sharded_sweep(&[a, b], &spec, LineRate::TEN_GBE, &constraints).expect("sharded sweep");
    assert_eq!(merged.all, local.all, "shard merge must reproduce sweep order exactly");
    assert_eq!(merged.admitted, local.admitted);

    // Cache pooling: every worker now holds the *whole* grid, although
    // each evaluated only its own stripe.
    for addr in [a, b] {
        let lines = request_lines(addr, &ApiRequest::Status.to_json()).expect("status");
        match ApiResponse::from_json(&lines[0]).expect("parse") {
            ApiResponse::Status(info) => assert_eq!(
                info.cache_entries, 4,
                "worker {addr} should be warm for all four sweep points"
            ),
            other => panic!("expected status_result, got {other:?}"),
        }
    }
    shut_down(a);
    shut_down(b);
    ha.join().expect("join").expect("clean exit");
    hb.join().expect("join").expect("clean exit");
}

#[test]
fn sharded_patricia_sweep_is_byte_identical_to_the_local_explorer() {
    // The PATRICIA organisation rides the same wire/shard machinery as the
    // paper's kinds; this pins that a sweep over it — sharded across two
    // workers — reproduces the local explorer's reports byte for byte once
    // serialised, not merely structurally.
    let spec = SweepSpec {
        buses: vec![1, 3],
        replication: vec![1],
        kinds: vec![RoutingTableKind::Patricia, RoutingTableKind::Trie],
        entries: 8,
        workload: None,
        faults: None,
        trace: None,
        ..SweepSpec::default()
    };
    let constraints = Constraints::default();
    let local = explore(&spec, LineRate::TEN_GBE, &constraints);

    let (a, ha) = start(ServerConfig::default());
    let (b, hb) = start(ServerConfig::default());
    let merged =
        sharded_sweep(&[a, b], &spec, LineRate::TEN_GBE, &constraints).expect("sharded sweep");
    assert_eq!(merged.all.len(), 4);
    assert!(merged.all.iter().any(|r| r.config.table == RoutingTableKind::Patricia));
    let serialise = |reports: &[taco_core::EvalReport]| -> String {
        reports.iter().map(taco_core::api::table1_cell_json).collect::<Vec<_>>().join("\n")
    };
    assert_eq!(
        serialise(&merged.all),
        serialise(&local.all),
        "sharded patricia sweep must serialise byte-identically to the local explorer"
    );
    assert_eq!(merged.admitted, local.admitted);
    shut_down(a);
    shut_down(b);
    ha.join().expect("join").expect("clean exit");
    hb.join().expect("join").expect("clean exit");
}

/// A scripted shard "worker" for merge-robustness tests: one v2 session,
/// answering every sweep request with the canned `shard_result` and every
/// cache export with a valid (empty) snapshot, until the coordinator hangs
/// up.  The real daemon never misbehaves this way, so the coordinator's
/// defences can only be exercised against a liar.
fn fake_shard_worker(result: ApiResponse) -> (SocketAddr, thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake worker");
    let addr = listener.local_addr().expect("local addr");
    let handle = thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept coordinator");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line).expect("read request") == 0 {
                return;
            }
            let wire = WireRequest::from_json(line.trim_end()).expect("parse request");
            let response = match wire.request {
                ApiRequest::Sweep { .. } => result.clone(),
                ApiRequest::CacheExport => {
                    ApiResponse::CacheSnapshot { body: EvalCache::new().to_snapshot_string().0 }
                }
                other => panic!("unexpected request {other:?}"),
            };
            let frame = format!("{}\n", response.to_json_v2(wire.id));
            writer.write_all(frame.as_bytes()).expect("write response");
        }
    });
    (addr, handle)
}

#[test]
fn zero_and_nonzero_shard_totals_are_a_grid_size_disagreement() {
    // An empty grid (`total == 0`) is a legitimate first reply, but it
    // must still collide with a second worker claiming four points — the
    // old merge used the empty slot vector itself as the "first reply"
    // sentinel, so this exact pairing slipped through unnoticed.
    let empty = ApiResponse::ShardResult { total: 0, indices: vec![], reports: vec![] };
    let four = ApiResponse::ShardResult { total: 4, indices: vec![], reports: vec![] };
    let (a, ha) = fake_shard_worker(empty);
    let (b, hb) = fake_shard_worker(four);
    let err = sharded_sweep(&[a, b], &tiny_sweep(), LineRate::TEN_GBE, &Constraints::default())
        .expect_err("a 0-vs-4 grid size disagreement must fail the merge");
    assert!(err.to_string().contains("disagree on the grid size (0 vs 4)"), "{err}");
    ha.join().expect("worker a exits");
    hb.join().expect("worker b exits");
}

#[test]
fn duplicate_shard_indices_are_rejected_not_overwritten() {
    // A worker answering the same global index twice used to overwrite
    // the first report silently; the merge must instead name the index in
    // a structured error, because a duplicate means the stripes (and so
    // the whole exploration) cannot be trusted.
    let spec = tiny_sweep();
    let report = explore(&spec, LineRate::TEN_GBE, &Constraints::default()).all[1].clone();
    let doubled = ApiResponse::ShardResult {
        total: 4,
        indices: vec![1, 1],
        reports: vec![report.clone(), report],
    };
    let (addr, handle) = fake_shard_worker(doubled);
    let err = sharded_sweep(&[addr], &spec, LineRate::TEN_GBE, &Constraints::default())
        .expect_err("a duplicate sweep index must fail the merge");
    assert!(err.to_string().contains("both answered sweep point 1"), "{err}");
    handle.join().expect("worker exits");
}

#[test]
fn more_workers_than_grid_points_merges_empty_stripes_cleanly() {
    // Three workers over a two-point grid: the third round-robin stripe is
    // empty, and the worker must answer a valid empty `shard_result` (with
    // the true total) that the coordinator merges without complaint.
    let spec = SweepSpec {
        buses: vec![1, 3],
        replication: vec![1],
        kinds: vec![RoutingTableKind::Cam],
        entries: 8,
        workload: None,
        faults: None,
        trace: None,
        ..SweepSpec::default()
    };
    let constraints = Constraints::default();
    let local = explore(&spec, LineRate::TEN_GBE, &constraints);
    assert_eq!(local.all.len(), 2, "the grid must be smaller than the worker pool");

    let (a, ha) = start(ServerConfig::default());
    let (b, hb) = start(ServerConfig::default());
    let (c, hc) = start(ServerConfig::default());
    let merged = sharded_sweep(&[a, b, c], &spec, LineRate::TEN_GBE, &constraints)
        .expect("an empty stripe is a first-class shard answer");
    assert_eq!(merged.all, local.all, "shard merge must reproduce sweep order exactly");
    assert_eq!(merged.admitted, local.admitted);
    for addr in [a, b, c] {
        shut_down(addr);
    }
    for handle in [ha, hb, hc] {
        handle.join().expect("join").expect("clean exit");
    }
}

#[test]
fn shard_requests_are_v2_only_and_validated() {
    let (addr, handle) = start(ServerConfig::default());
    // A v1 frame smuggling a shard member is rejected before dispatch.
    let request = ApiRequest::Sweep {
        spec: tiny_sweep(),
        rate: LineRate::TEN_GBE,
        constraints: Constraints::default(),
        shard: Some(taco_core::SweepShard { offset: 0, stride: 2 }),
    }
    .to_json();
    let lines = request_lines(addr, &request).expect("response");
    match ApiResponse::from_json(&lines[0]).expect("parse") {
        ApiResponse::Error(e) => {
            assert_eq!(e.code, ApiErrorCode::BadRequest);
            assert!(e.message.contains("api_version \"v2\""), "{}", e.message);
        }
        other => panic!("expected error, got {other:?}"),
    }
    shut_down(addr);
    handle.join().expect("join").expect("clean exit");
}
