//! A libc-free binding to `poll(2)` — the readiness primitive behind the
//! daemon's event loop.
//!
//! The workspace's dependency policy forbids registry crates, so instead
//! of `libc`/`mio` this module declares the one syscall wrapper it needs
//! directly: `poll` is in every libc the workspace targets, its ABI is
//! stable POSIX, and `PollFd` is `#[repr(C)]`-identical to `struct
//! pollfd`.  Level-triggered readiness over a few hundred descriptors is
//! plenty for a loopback evaluation daemon; an epoll upgrade would change
//! only this module.

use std::io;

/// Data may be read without blocking.
pub const POLLIN: i16 = 0x001;
/// Data may be written without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always polled, returned in `revents` only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always polled, returned in `revents` only).
pub const POLLHUP: i16 = 0x010;
/// The descriptor is not open (always polled, returned in `revents` only).
pub const POLLNVAL: i16 = 0x020;

/// One descriptor's interest set and readiness result — layout-compatible
/// with POSIX `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: i32,
    /// Requested events ([`POLLIN`] / [`POLLOUT`]).
    pub events: i16,
    /// Returned events, filled in by [`wait`].
    pub revents: i16,
}

impl PollFd {
    /// An interest entry for `fd` with `revents` cleared.
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd { fd, events, revents: 0 }
    }

    /// `true` if any of `mask`'s bits came back in `revents`.
    pub fn has(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }

    /// `true` if the descriptor is readable — or in an error/hangup state,
    /// which a reader must also consume (the read will report the EOF or
    /// error).
    pub fn readable(&self) -> bool {
        self.has(POLLIN | POLLERR | POLLHUP | POLLNVAL)
    }

    /// `true` if the descriptor accepts writes (or errored, which a write
    /// attempt will surface).
    pub fn writable(&self) -> bool {
        self.has(POLLOUT | POLLERR | POLLHUP | POLLNVAL)
    }
}

extern "C" {
    /// POSIX `poll(2)`.  `nfds_t` is `unsigned long` on every Linux ABI
    /// this workspace builds for.
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

/// Blocks until at least one entry is ready or `timeout_ms` elapses
/// (`-1` = wait forever; `0` = poll and return).  Returns the number of
/// ready entries; `EINTR` is retried internally.
pub fn wait(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd-layout structs for the duration of the call,
        // and the length is passed alongside the pointer.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readiness_tracks_pipe_state() {
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        // Nothing written yet: a zero-timeout poll reports no readiness.
        assert_eq!(wait(&mut fds, 0).expect("poll"), 0);
        assert!(!fds[0].readable());

        a.write_all(b"x").expect("write");
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        assert_eq!(wait(&mut fds, 1000).expect("poll"), 1);
        assert!(fds[0].readable());

        // A peer hangup is readable too (the read observes the EOF).
        drop(a);
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        assert_eq!(wait(&mut fds, 1000).expect("poll"), 1);
        assert!(fds[0].readable());
    }

    #[test]
    fn writable_socket_reports_pollout() {
        let (a, _b) = UnixStream::pair().expect("socketpair");
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        assert_eq!(wait(&mut fds, 1000).expect("poll"), 1);
        assert!(fds[0].writable());
    }
}
