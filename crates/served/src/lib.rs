#![warn(missing_docs)]

//! `taco-served` — a long-running batch evaluation daemon.
//!
//! The paper's pitch is *fast turn-around*: evaluating an architecture
//! takes milliseconds once the simulator is warm, so the natural way to
//! serve a design team is a resident process that keeps the
//! [`EvalCache`] hot across requests.  This crate is that process — a
//! std-only TCP daemon speaking the versioned [`taco_core::api`] wire
//! protocol, one JSON line per request, newline-delimited JSON responses
//! back.
//!
//! # Architecture
//!
//! A single **event-loop thread** owns the listener and every connection,
//! multiplexed over a libc-free [`poll(2)`](poll) wrapper on non-blocking
//! sockets.  Cheap requests — `status`, cache-hit evaluations, cache
//! export/import — are answered inline by the loop without occupying a
//! job slot.  Simulation-heavy work (cache-miss evals, sweeps) is queued
//! to a small pool of **runner threads**, which stream response lines
//! back to the loop over a channel and wake it through a socketpair.
//!
//! # Wire dialects
//!
//! Each connection's first frame is version-sniffed:
//!
//! * **v1** (`"api_version":"v1"`) is the one-shot dialect: one request,
//!   one response stream, then the server closes the connection.  Its
//!   bytes are pinned by golden tests and do not change.
//! * **v2** (`"api_version":"v2"`) is the session dialect: the connection
//!   is persistent, every request carries a client-chosen `id` echoed on
//!   all of its response lines (so concurrent `sweep_point` streams
//!   interleave safely), and the session-only kinds — sharded sweeps,
//!   `cache_export`, `cache_import` — become available.  See [`Session`]
//!   for the client half and [`sharded_sweep`] for the coordinator that
//!   splits one sweep across several daemons.
//!
//! Admission control is unchanged from the one-shot daemon: beyond
//! [`ServerConfig::max_pending`] queued-or-running jobs, submissions are
//! rejected with a structured [`ApiErrorCode::Busy`] error instead of
//! queueing without bound; on [`ApiRequest::Shutdown`] the daemon drains
//! in-flight jobs, persists the cache snapshot and exits gracefully.
//!
//! Responses are byte-stable by construction (see
//! [`ApiResponse::to_json`]), so clients may pin them against golden
//! fixtures regardless of cache state.
//!
//! ```no_run
//! use taco_served::{request_lines, Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default())?;
//! let addr = server.local_addr();
//! std::thread::spawn(move || server.run());
//! let lines =
//!     request_lines(addr, "{\"api_version\":\"v1\",\"kind\":\"status\"}")?;
//! println!("{}", lines[0]);
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod poll;

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

#[allow(unused_imports)] // doc links
use taco_core::api::ApiErrorCode;
use taco_core::api::{
    salvage_request_id, ApiError, ApiRequest, ApiResponse, StatusInfo, SweepShard, WireRequest,
    WireResponse, API_VERSION, API_VERSION_V2,
};
use taco_core::{
    explore_with, pool, rank_reports, ArchConfig, Constraints, EvalCache, EvalReport, EvalRequest,
    Exploration, ExploreOptions, LineRate, PointRecord, SweepObserver, SweepSpec,
};

/// A connection whose outgoing buffer grows past this bound is dropped:
/// the client is not reading, and the daemon must not buffer an unbounded
/// result set for it.
const MAX_WRITE_BUFFER: usize = 64 << 20;

/// How long the daemon keeps flushing drained connections after the
/// shutdown ack before giving up on slow readers.
const SHUTDOWN_FLUSH_DEADLINE: Duration = Duration::from_secs(10);

/// Distinct request bodies the inline hit memo holds before it resets.
/// The memo maps an eval request's envelope-independent body to the
/// serialised body of its cache-hit response, so a hammered point costs
/// one hash lookup instead of a parse + report serialisation per
/// request.  It is never stale — evaluation is deterministic and the
/// [`EvalCache`] never evicts — so a full clear on overflow only costs
/// re-serialisation.
const HIT_MEMO_BOUND: usize = 4096;

/// Daemon configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Address to listen on.  Port `0` picks an ephemeral port — read it
    /// back with [`Server::local_addr`].
    pub addr: String,
    /// Admission bound: jobs admitted but not yet fully answered.
    /// Submissions beyond it receive a structured `busy` error.  Values
    /// below 1 are treated as 1.
    pub max_pending: usize,
    /// Cache snapshot path: loaded (if present and usable) on
    /// [`Server::bind`], written on graceful shutdown.  `None` serves
    /// from a cold cache and persists nothing.
    pub snapshot: Option<PathBuf>,
    /// Worker threads for sweep fan-out (`0` = one per core, the
    /// [`pool::default_threads`] rule).
    pub threads: usize,
    /// Largest accepted request frame in bytes; a connection exceeding it
    /// gets a structured `bad_request` and is closed.  Values below 1 KiB
    /// are treated as 1 KiB.
    pub max_frame: usize,
}

impl Default for ServerConfig {
    /// Loopback on an ephemeral port, 4 job slots, no snapshot, all
    /// cores, 8 MiB frames.
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_pending: 4,
            snapshot: None,
            threads: 0,
            max_frame: 8 << 20,
        }
    }
}

/// Which envelope a response line must wear: the request's dialect, plus
/// the id to echo for v2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Envelope {
    /// The one-shot dialect.
    V1,
    /// The session dialect; `None` = `"id":null` (unsalvageable frame).
    V2(Option<u64>),
}

impl Envelope {
    fn line(self, response: &ApiResponse) -> String {
        match self {
            Envelope::V1 => response.to_json(),
            Envelope::V2(id) => response.to_json_v2(id),
        }
    }

    /// Builds the same line as [`Envelope::line`] from an
    /// already-serialised response body ([`ApiResponse::body_json`]).
    fn line_from_body(self, body: &str) -> String {
        match self {
            Envelope::V1 => format!("{{\"api_version\":\"{API_VERSION}\",{body}}}"),
            Envelope::V2(id) => {
                let id = id.map_or_else(|| "null".to_owned(), |n| n.to_string());
                format!("{{\"api_version\":\"{API_VERSION_V2}\",\"id\":{id},{body}}}")
            }
        }
    }
}

/// Splits a request line with a canonical envelope head (the byte order
/// [`ApiRequest::to_json`] / [`ApiRequest::to_json_v2`] emit) into its
/// envelope and its envelope-independent body.  Lines with any other
/// member order return `None` and take the full parse path.
fn split_canonical(line: &str) -> Option<(Envelope, &str)> {
    if let Some(body) = line.strip_prefix("{\"api_version\":\"v1\",") {
        return Some((Envelope::V1, body));
    }
    let rest = line.strip_prefix("{\"api_version\":\"v2\",\"id\":")?;
    let comma = rest.find(',')?;
    let id: u64 = rest[..comma].parse().ok()?;
    Some((Envelope::V2(Some(id)), &rest[comma + 1..]))
}

/// A connection's sniffed dialect (decided by its first frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dialect {
    V1,
    V2,
}

/// One admitted job, handed from the event loop to a runner thread.
struct Job {
    token: u64,
    envelope: Envelope,
    request: ApiRequest,
}

/// A response fragment flowing from a runner back to the event loop.
enum LoopMsg {
    /// One response line for the connection `token`.
    Line { token: u64, line: String },
    /// The job for `token` is complete; its slot frees.
    Done { token: u64 },
}

/// The runner pool's shared queue.
#[derive(Default)]
struct Runners {
    queue: Mutex<RunnerQueue>,
    work: Condvar,
}

#[derive(Default)]
struct RunnerQueue {
    jobs: VecDeque<Job>,
    stop: bool,
}

/// Everything the event loop and the runner threads share.
struct Shared {
    cache: EvalCache,
    max_pending: usize,
    threads: usize,
    max_frame: usize,
    snapshot: Option<PathBuf>,
    addr: SocketAddr,
}

/// The daemon: a bound listener plus the shared queue and cache.
///
/// [`Server::bind`] acquires the port (and warms the cache from the
/// snapshot); [`Server::run`] serves until a client sends a `shutdown`
/// request.
pub struct Server {
    listener: TcpListener,
    shared: Shared,
}

impl Server {
    /// Binds the listener and prepares the cache.
    ///
    /// An existing snapshot at [`ServerConfig::snapshot`] is loaded into
    /// the cache; a corrupt, truncated or version-skewed snapshot is
    /// *discarded with a warning* on stderr — a bad file on disk must
    /// never keep the daemon from starting.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(config.addr.as_str())?;
        let addr = listener.local_addr()?;
        let cache = EvalCache::new();
        if let Some(path) = &config.snapshot {
            if path.exists() {
                match cache.load_snapshot(path) {
                    Ok(entries) => {
                        eprintln!(
                            "taco-served: warmed cache with {entries} entries from {}",
                            path.display()
                        );
                    }
                    Err(e) => eprintln!(
                        "taco-served: discarding unusable snapshot {}: {e}",
                        path.display()
                    ),
                }
            }
        }
        let threads = if config.threads == 0 { pool::default_threads() } else { config.threads };
        Ok(Server {
            listener,
            shared: Shared {
                cache,
                max_pending: config.max_pending.max(1),
                threads,
                max_frame: config.max_frame.max(1 << 10),
                snapshot: config.snapshot,
                addr,
            },
        })
    }

    /// The bound address (the resolved port when the config asked for
    /// port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Serves requests until a graceful shutdown completes.
    ///
    /// Blocking: spawn it on a thread if the caller needs to keep
    /// working.  The calling thread becomes the event loop; runner
    /// threads (one per job slot, capped by the worker-thread budget)
    /// execute queued jobs and stream their response lines back.
    pub fn run(self) -> io::Result<()> {
        let Server { listener, shared } = self;
        listener.set_nonblocking(true)?;
        // The waker: runners write a byte to their end, the loop polls the
        // other.  Both ends are non-blocking — a full pipe already means a
        // wake-up is pending, so a dropped poke byte is harmless.
        let (loop_waker, runner_waker) = UnixStream::pair()?;
        loop_waker.set_nonblocking(true)?;
        runner_waker.set_nonblocking(true)?;
        let runner_count = shared.threads.min(shared.max_pending).max(1);
        let wakers =
            (0..runner_count).map(|_| runner_waker.try_clone()).collect::<io::Result<Vec<_>>>()?;
        let (tx, rx) = mpsc::channel::<LoopMsg>();
        let runners = Runners::default();
        thread::scope(|s| {
            for waker in wakers {
                let tx = tx.clone();
                let runners = &runners;
                let shared = &shared;
                s.spawn(move || run_jobs(runners, shared, &tx, &waker));
            }
            drop(tx);
            let result = EventLoop::new(&shared, &runners).serve(&listener, &rx, &loop_waker);
            // Release the runner pool whether the loop ended cleanly or
            // errored, so the scope can join.
            runners.queue.lock().unwrap().stop = true;
            runners.work.notify_all();
            result
        })
    }
}

/// Writes one byte into the waker pipe (best-effort: a full pipe or a
/// torn-down loop both already mean no poke is needed).
fn poke(waker: &UnixStream) {
    let _ = (&mut &*waker).write(&[1]);
}

/// Emits one response line for `token` and wakes the loop.
fn emit(tx: &Sender<LoopMsg>, waker: &UnixStream, token: u64, line: String) {
    let _ = tx.send(LoopMsg::Line { token, line });
    poke(waker);
}

// ---------------------------------------------------------------------------
// Runner threads: the simulation-heavy half.
// ---------------------------------------------------------------------------

fn run_jobs(runners: &Runners, shared: &Shared, tx: &Sender<LoopMsg>, waker: &UnixStream) {
    loop {
        let job = {
            let mut q = runners.queue.lock().unwrap();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.stop {
                    return;
                }
                q = runners.work.wait(q).unwrap();
            }
        };
        execute(shared, &job, tx, waker);
        let _ = tx.send(LoopMsg::Done { token: job.token });
        poke(waker);
    }
}

/// The [`EvalRequest`] a sweep issues for one grid point (mirrors the
/// explorer's own request construction, for the sharded path).
fn point_request(spec: &SweepSpec, config: ArchConfig, rate: LineRate) -> EvalRequest {
    let mut request = EvalRequest::new(config).rate(rate).entries(spec.entries);
    if let Some(workload) = spec.workload {
        request = request.workload(workload);
    }
    if let Some(faults) = spec.faults {
        request = request.faults(faults);
    }
    request
}

/// Streams [`ApiResponse::SweepPoint`] lines into the loop channel as
/// sweep workers finish points (completion order), wearing the job's
/// envelope.
///
/// The sender sits behind a mutex only because [`SweepObserver`] requires
/// `Sync` and `Sender` is not.
struct Progress<'a> {
    tx: Mutex<&'a Sender<LoopMsg>>,
    waker: &'a UnixStream,
    token: u64,
    envelope: Envelope,
}

impl Progress<'_> {
    fn point(&self, index: usize, total: usize, report: &EvalReport, cache_hit: bool) {
        let line = self.envelope.line(&ApiResponse::SweepPoint {
            index,
            total,
            label: report.config.label(),
            cache_hit,
            feasible: report.is_feasible(),
        });
        let _ = self.tx.lock().unwrap().send(LoopMsg::Line { token: self.token, line });
        poke(self.waker);
    }
}

impl SweepObserver for Progress<'_> {
    fn on_point(&self, record: &PointRecord<'_>) {
        self.point(record.index, record.total, record.report, record.cache_hit);
    }
}

/// Runs one queued job, streaming its response lines to the loop.
fn execute(shared: &Shared, job: &Job, tx: &Sender<LoopMsg>, waker: &UnixStream) {
    let respond = |response: ApiResponse| emit(tx, waker, job.token, job.envelope.line(&response));
    match &job.request {
        ApiRequest::Eval(spec) => match spec.to_request() {
            Ok(request) => {
                let (report, _cache_hit) = shared.cache.evaluate_recorded(&request);
                respond(ApiResponse::EvalResult(Box::new(report)));
            }
            Err(e) => respond(ApiResponse::Error(e)),
        },
        ApiRequest::Sweep { spec, rate, constraints, shard: None } => {
            let progress =
                Progress { tx: Mutex::new(tx), waker, token: job.token, envelope: job.envelope };
            let opts = ExploreOptions {
                threads: shared.threads,
                cache: Some(&shared.cache),
                observer: &progress,
            };
            let exploration = explore_with(spec, *rate, constraints, &opts);
            respond(ApiResponse::SweepResult {
                admitted: exploration.admitted,
                reports: exploration.all,
            });
        }
        ApiRequest::Sweep { spec, rate, shard: Some(shard), .. } => {
            // This worker's round-robin stripe of the global grid.  Indices
            // stay global so the coordinator can merge stripes in sweep
            // order; ranking happens there, over the merged set.
            let configs = taco_core::grid(spec);
            let total = configs.len();
            let mine: Vec<(usize, ArchConfig)> = configs
                .into_iter()
                .enumerate()
                .filter(|(i, _)| *i as u32 % shard.stride == shard.offset)
                .collect();
            let progress =
                Progress { tx: Mutex::new(tx), waker, token: job.token, envelope: job.envelope };
            let reports = pool::ordered_map(&mine, shared.threads, |_, (index, config)| {
                let request = point_request(spec, config.clone(), *rate);
                let (report, cache_hit) = shared.cache.evaluate_recorded(&request);
                progress.point(*index, total, &report, cache_hit);
                report
            });
            let indices = mine.iter().map(|&(index, _)| index).collect();
            respond(ApiResponse::ShardResult { total, indices, reports });
        }
        // The event loop answers these inline; they are never queued.
        ApiRequest::Status
        | ApiRequest::Shutdown
        | ApiRequest::CacheExport
        | ApiRequest::CacheImport { .. } => {
            respond(ApiResponse::Error(ApiError::internal(
                "control requests are answered inline, never queued",
            )));
        }
    }
}

// ---------------------------------------------------------------------------
// The event loop: sockets, framing, dispatch.
// ---------------------------------------------------------------------------

/// One client connection's loop-side state.
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet framed into request lines.
    rbuf: Vec<u8>,
    /// Response bytes not yet accepted by the socket (`wpos` already
    /// written).
    wbuf: Vec<u8>,
    wpos: usize,
    /// Decided by the first frame; `None` until then.
    dialect: Option<Dialect>,
    /// Queued/running jobs whose response lines will still arrive.
    pending_jobs: usize,
    /// Close once the write buffer drains and no jobs are pending.
    closing: bool,
    /// Stop reading (one-shot request consumed or peer EOF).
    read_done: bool,
    /// Framing violation: keep *reading* but discard the bytes until the
    /// peer closes.  Closing with unread bytes in the receive queue would
    /// send an RST that can destroy the error response in flight, so the
    /// connection half-closes (FIN after the flushed error) and drains
    /// instead.
    discarding: bool,
    /// The write side has been shut down (discarding connections only).
    fin_sent: bool,
    /// A fatal buffer overflow or write error: drop at the next reap.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            dialect: None,
            pending_jobs: 0,
            closing: false,
            read_done: false,
            discarding: false,
            fin_sent: false,
            dead: false,
        }
    }

    fn flushed(&self) -> bool {
        self.wpos == self.wbuf.len()
    }

    /// Pushes response bytes; returns `false` when the connection's
    /// buffer bound is exceeded (the caller drops the connection).
    fn push_line(&mut self, line: &str) -> bool {
        if self.wbuf.len() - self.wpos + line.len() + 1 > MAX_WRITE_BUFFER {
            return false;
        }
        self.wbuf.extend_from_slice(line.as_bytes());
        self.wbuf.push(b'\n');
        true
    }

    /// Pushes one complete response line and, for one-shot connections
    /// with nothing else pending, schedules the close.  The bytes go out
    /// in the loop's end-of-pass flush, so a pipelined batch of requests
    /// is answered with one write, not one write per response.
    fn push_response(&mut self, line: &str) {
        if !self.push_line(line) {
            self.dead = true;
            return;
        }
        if self.dialect != Some(Dialect::V2) && self.pending_jobs == 0 {
            self.closing = true;
            self.read_done = true;
        }
    }

    /// Writes as much buffered output as the socket accepts right now;
    /// returns `false` on a connection-fatal write error.
    fn try_flush(&mut self) -> bool {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return false,
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.flushed() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        true
    }
}

struct EventLoop<'a> {
    shared: &'a Shared,
    runners: &'a Runners,
    /// Keyed by accept-order token; a `BTreeMap` so each poll pass
    /// handles readable connections in arrival order — the fairness the
    /// old one-thread-per-connection server had implicitly (a `shutdown`
    /// accepted after a job submission must not overtake it within one
    /// pass and reject the earlier request with `shutting_down`).
    conns: BTreeMap<u64, Conn>,
    next_token: u64,
    /// Jobs admitted and not yet completed (queued + running).
    in_flight: usize,
    draining: bool,
    /// Post-ack: stop accepting, flush what remains, then return.
    stopping: bool,
    shutdown_to: Option<(u64, Envelope)>,
    flush_deadline: Option<Instant>,
    /// Serialised-response memo for inline cache hits (see
    /// [`HIT_MEMO_BOUND`]).
    hit_memo: HashMap<String, String>,
    /// Requests answered straight from `hit_memo`; counted into the
    /// status report's cache hits (a memo hit *is* a cache hit, served
    /// one layer earlier).
    memo_hits: u64,
}

impl<'a> EventLoop<'a> {
    fn new(shared: &'a Shared, runners: &'a Runners) -> Self {
        EventLoop {
            shared,
            runners,
            conns: BTreeMap::new(),
            next_token: 0,
            in_flight: 0,
            draining: false,
            stopping: false,
            shutdown_to: None,
            flush_deadline: None,
            hit_memo: HashMap::new(),
            memo_hits: 0,
        }
    }

    fn serve(
        mut self,
        listener: &TcpListener,
        rx: &Receiver<LoopMsg>,
        waker: &UnixStream,
    ) -> io::Result<()> {
        loop {
            // Interest set: the waker always, the listener until the
            // shutdown ack, every connection that still reads or has
            // unflushed output.  Connections idle on a pending job need no
            // entry — the waker fires when their lines arrive.
            let mut fds = vec![poll::PollFd::new(waker.as_raw_fd(), poll::POLLIN)];
            let mut targets = vec![None];
            if !self.stopping {
                fds.push(poll::PollFd::new(listener.as_raw_fd(), poll::POLLIN));
                targets.push(None);
            }
            let listener_slot = fds.len() - 1;
            for (&token, conn) in &self.conns {
                let mut events = 0;
                if !conn.read_done {
                    events |= poll::POLLIN;
                }
                if !conn.flushed() {
                    events |= poll::POLLOUT;
                }
                if events != 0 {
                    fds.push(poll::PollFd::new(conn.stream.as_raw_fd(), events));
                    targets.push(Some(token));
                }
            }
            let timeout = if self.stopping { 50 } else { -1 };
            poll::wait(&mut fds, timeout)?;

            if fds[0].readable() {
                drain_waker(waker);
            }
            self.drain_msgs(rx);
            if !self.stopping && fds[listener_slot].readable() {
                self.accept_all(listener);
            }
            for (fd, target) in fds.iter().zip(&targets).skip(1) {
                let Some(token) = *target else { continue };
                if fd.readable() {
                    self.handle_read(token);
                }
            }
            self.flush_all();
            self.reap();
            self.advance_shutdown();
            self.flush_all();
            if self.stopping {
                let all_flushed = self.conns.is_empty();
                let expired = self.flush_deadline.is_some_and(|d| Instant::now() >= d);
                if all_flushed || expired {
                    return Ok(());
                }
            }
        }
    }

    /// Applies every queued runner message: response lines into write
    /// buffers, completions into slot bookkeeping.
    fn drain_msgs(&mut self, rx: &Receiver<LoopMsg>) {
        while let Ok(msg) = rx.try_recv() {
            match msg {
                LoopMsg::Line { token, line } => {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        if !conn.push_line(&line) {
                            // Overflow: the client is not reading; drop it
                            // at the next reap (the job still drains).
                            conn.dead = true;
                        }
                    }
                }
                LoopMsg::Done { token } => {
                    self.in_flight -= 1;
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.pending_jobs -= 1;
                        if conn.pending_jobs == 0 && conn.dialect == Some(Dialect::V1) {
                            conn.closing = true;
                        }
                    }
                }
            }
        }
    }

    fn accept_all(&mut self, listener: &TcpListener) {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    self.conns.insert(token, Conn::new(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn handle_read(&mut self, token: u64) {
        let Some(mut conn) = self.conns.remove(&token) else { return };
        let mut buf = [0u8; 64 * 1024];
        let mut eof = false;
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&buf[..n]);
                    // Yield to frame processing before pulling more than a
                    // frame's worth — bounds memory per read pass.
                    if conn.rbuf.len() > self.shared.max_frame {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Connection-fatal read error: drop it.  A pending
                    // job's lines will be discarded on arrival.
                    return;
                }
            }
        }
        self.process_frames(&mut conn, token);
        if eof {
            conn.read_done = true;
            if conn.pending_jobs == 0 && conn.flushed() {
                return; // peer gone, nothing left to deliver
            }
            conn.closing = true;
        }
        self.conns.insert(token, conn);
    }

    fn process_frames(&mut self, conn: &mut Conn, token: u64) {
        loop {
            if conn.discarding {
                conn.rbuf.clear();
                return;
            }
            if conn.read_done {
                // One-shot request consumed (or framing violation): any
                // pipelined extra bytes are discarded by contract.
                conn.rbuf.clear();
                return;
            }
            match conn.rbuf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    let frame: Vec<u8> = conn.rbuf.drain(..=pos).collect();
                    if frame.len() > self.shared.max_frame {
                        self.reject_oversized(conn);
                        continue;
                    }
                    let line = String::from_utf8_lossy(&frame).trim_end().to_owned();
                    self.handle_frame(conn, token, &line);
                }
                None => {
                    if conn.rbuf.len() > self.shared.max_frame {
                        self.reject_oversized(conn);
                    }
                    return;
                }
            }
        }
    }

    /// A frame (or an unterminated prefix) beyond the size bound: answer
    /// with a structured error and stop reading this connection.
    fn reject_oversized(&mut self, conn: &mut Conn) {
        let envelope = match conn.dialect {
            Some(Dialect::V2) => Envelope::V2(None),
            _ => Envelope::V1,
        };
        let error = ApiError::bad_request(format!(
            "request frame exceeds the {}-byte limit",
            self.shared.max_frame
        ));
        self.respond(conn, envelope, &ApiResponse::Error(error));
        conn.discarding = true;
        conn.read_done = false;
        conn.closing = true;
        conn.rbuf.clear();
    }

    /// The inline fast path: a byte-canonical request line whose body is
    /// already in the hit memo is answered without parsing or
    /// re-serialising anything.  Returns `false` when the slow path must
    /// run (unknown body, non-canonical envelope, or a dialect the
    /// connection must not speak).
    fn try_memo(&mut self, conn: &mut Conn, line: &str) -> bool {
        let Some((envelope, body)) = split_canonical(line) else { return false };
        // Dialect discipline matches the slow path: a v2 session rejects
        // id-less frames, a fresh connection may speak either.
        match (conn.dialect, envelope) {
            (None | Some(Dialect::V1), Envelope::V1) => {}
            (None | Some(Dialect::V2), Envelope::V2(_)) => {}
            _ => return false,
        }
        let Some(response_body) = self.hit_memo.get(body) else { return false };
        self.memo_hits += 1;
        match envelope {
            Envelope::V1 => {
                conn.dialect = Some(Dialect::V1);
                conn.read_done = true;
            }
            Envelope::V2(_) => conn.dialect = Some(Dialect::V2),
        }
        conn.push_response(&envelope.line_from_body(response_body));
        true
    }

    fn handle_frame(&mut self, conn: &mut Conn, token: u64, line: &str) {
        if self.try_memo(conn, line) {
            return;
        }
        match conn.dialect {
            None => match WireRequest::from_json(line) {
                Ok(wire) => {
                    let envelope = match wire.id {
                        Some(id) => {
                            conn.dialect = Some(Dialect::V2);
                            Envelope::V2(Some(id))
                        }
                        None => {
                            conn.dialect = Some(Dialect::V1);
                            conn.read_done = true;
                            Envelope::V1
                        }
                    };
                    self.dispatch(conn, token, envelope, wire.request, line);
                }
                Err(e) => {
                    // An unparseable first frame never established a
                    // dialect: answer in v1 (the sniff default) and close.
                    self.respond(conn, Envelope::V1, &ApiResponse::Error(e));
                    conn.read_done = true;
                    conn.closing = true;
                }
            },
            Some(Dialect::V2) => match WireRequest::from_json(line) {
                Ok(WireRequest { id: Some(id), request }) => {
                    self.dispatch(conn, token, Envelope::V2(Some(id)), request, line);
                }
                Ok(WireRequest { id: None, .. }) => {
                    let error =
                        ApiError::bad_request("a v2 session requires \"id\" on every request");
                    self.respond(conn, Envelope::V2(None), &ApiResponse::Error(error));
                }
                // A malformed frame mid-session answers with the salvaged
                // id (or null) and keeps the session alive — one bad
                // request must not kill a multiplexed connection.
                Err(e) => {
                    let envelope = Envelope::V2(salvage_request_id(line));
                    self.respond(conn, envelope, &ApiResponse::Error(e));
                }
            },
            // One-shot connections consume exactly one frame; extras were
            // already discarded by `process_frames`.
            Some(Dialect::V1) => {}
        }
    }

    fn dispatch(
        &mut self,
        conn: &mut Conn,
        token: u64,
        envelope: Envelope,
        request: ApiRequest,
        raw: &str,
    ) {
        match request {
            ApiRequest::Status => {
                let status = self.status();
                self.respond(conn, envelope, &ApiResponse::Status(status));
            }
            ApiRequest::Shutdown => {
                if self.draining {
                    self.respond(conn, envelope, &ApiResponse::Error(ApiError::shutting_down()));
                } else {
                    // The ack is written once the drain completes — see
                    // `advance_shutdown`.
                    self.draining = true;
                    self.shutdown_to = Some((token, envelope));
                }
            }
            ApiRequest::CacheExport => {
                let (body, _stats) = self.shared.cache.to_snapshot_string();
                self.respond(conn, envelope, &ApiResponse::CacheSnapshot { body });
            }
            ApiRequest::CacheImport { body } => {
                let response = match self.shared.cache.load_snapshot_str(&body) {
                    Ok(_) => ApiResponse::CacheLoaded { entries: self.shared.cache.len() as u64 },
                    Err(e) => {
                        ApiResponse::Error(ApiError::bad_request(format!("cache_import: {e}")))
                    }
                };
                self.respond(conn, envelope, &response);
            }
            ApiRequest::Eval(spec) => match spec.to_request() {
                Err(e) => self.respond(conn, envelope, &ApiResponse::Error(e)),
                Ok(eval_request) => {
                    // The inline fast path: a cache hit is answered by the
                    // loop itself without consuming a job slot (interpretive
                    // requests never hit — they bypass the memo).  The
                    // serialised body is remembered so the next identical
                    // request short-circuits in `try_memo`.
                    match self.shared.cache.lookup_recorded(&eval_request) {
                        Some(report) => {
                            let body = ApiResponse::EvalResult(Box::new(report)).body_json();
                            if let Some((_, key)) = split_canonical(raw) {
                                if self.hit_memo.len() >= HIT_MEMO_BOUND {
                                    self.hit_memo.clear();
                                }
                                self.hit_memo.insert(key.to_owned(), body.clone());
                            }
                            conn.push_response(&envelope.line_from_body(&body));
                        }
                        None => self.enqueue(conn, token, envelope, ApiRequest::Eval(spec)),
                    }
                }
            },
            sweep @ ApiRequest::Sweep { .. } => self.enqueue(conn, token, envelope, sweep),
        }
    }

    /// Admission control for simulation-heavy jobs.
    fn enqueue(&mut self, conn: &mut Conn, token: u64, envelope: Envelope, request: ApiRequest) {
        if self.draining {
            self.respond(conn, envelope, &ApiResponse::Error(ApiError::shutting_down()));
            return;
        }
        if self.in_flight >= self.shared.max_pending {
            let message = format!(
                "{} of {} job slots in use; retry after a slot drains",
                self.in_flight, self.shared.max_pending
            );
            self.respond(conn, envelope, &ApiResponse::Error(ApiError::busy(message)));
            return;
        }
        self.in_flight += 1;
        conn.pending_jobs += 1;
        self.runners.queue.lock().unwrap().jobs.push_back(Job { token, envelope, request });
        self.runners.work.notify_one();
    }

    /// Pushes one inline response line (see [`Conn::push_response`]).
    fn respond(&mut self, conn: &mut Conn, envelope: Envelope, response: &ApiResponse) {
        conn.push_response(&envelope.line(response));
    }

    fn status(&self) -> StatusInfo {
        StatusInfo {
            in_flight: self.in_flight as u64,
            queued: self.runners.queue.lock().unwrap().jobs.len() as u64,
            max_pending: self.shared.max_pending as u64,
            draining: self.draining,
            cache_entries: self.shared.cache.len() as u64,
            cache_hits: self.shared.cache.hits() + self.memo_hits,
            cache_misses: self.shared.cache.misses(),
        }
    }

    /// Writes out every connection's buffered responses, as far as the
    /// sockets accept them.  Running once per loop pass (instead of once
    /// per response) coalesces a pipelined batch into a single write.
    fn flush_all(&mut self) {
        for conn in self.conns.values_mut() {
            if !conn.dead && !conn.flushed() && !conn.try_flush() {
                conn.dead = true;
            }
        }
    }

    /// Drops connections whose response is fully delivered.  Discarding
    /// connections half-close first (FIN after the flushed error, so the
    /// peer's reader sees a normal end of stream) and are dropped only on
    /// the peer's own EOF — a full close with unread bytes in the receive
    /// queue would turn into an RST that can destroy the response.
    fn reap(&mut self) {
        self.conns.retain(|_, conn| {
            if conn.dead {
                return false;
            }
            let delivered = conn.closing && conn.pending_jobs == 0 && conn.flushed();
            if delivered && conn.discarding && !conn.read_done {
                if !conn.fin_sent {
                    conn.fin_sent = true;
                    let _ = conn.stream.shutdown(std::net::Shutdown::Write);
                }
                return true; // keep draining until the peer closes
            }
            !delivered
        });
    }

    /// Once a requested drain completes: persist the snapshot, ack the
    /// shutdown, stop accepting and enter the flush phase.
    fn advance_shutdown(&mut self) {
        if !self.draining || self.stopping || self.in_flight != 0 {
            return;
        }
        // Snapshot failures degrade to `persisted: null` plus a warning —
        // shutdown must complete even on a read-only disk.
        let persisted = self.shared.snapshot.as_ref().and_then(|path| {
            match self.shared.cache.save_snapshot(path) {
                Ok(stats) => Some(stats.persisted),
                Err(e) => {
                    eprintln!(
                        "taco-served: could not persist cache snapshot to {}: {e}",
                        path.display()
                    );
                    None
                }
            }
        });
        if let Some((token, envelope)) = self.shutdown_to.take() {
            if let Some(mut conn) = self.conns.remove(&token) {
                self.respond(&mut conn, envelope, &ApiResponse::ShutdownAck { persisted });
                conn.closing = true;
                conn.read_done = true;
                self.conns.insert(token, conn);
            }
        }
        for conn in self.conns.values_mut() {
            conn.read_done = true;
            conn.closing = true;
        }
        self.stopping = true;
        self.flush_deadline = Some(Instant::now() + SHUTDOWN_FLUSH_DEADLINE);
        self.reap();
    }
}

/// Empties the waker pipe (the wake-up already happened; the bytes are
/// just tokens).
fn drain_waker(waker: &UnixStream) {
    let mut buf = [0u8; 256];
    loop {
        match (&mut &*waker).read(&mut buf) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

// ---------------------------------------------------------------------------
// Clients: the v1 one-shot helpers and the v2 session.
// ---------------------------------------------------------------------------

/// Connects, sends one request line and returns the reader for the
/// response stream — the client half of the **v1** protocol, used by the
/// CLI and the integration tests to read streamed sweep progress
/// incrementally.
pub fn open_request(
    addr: impl ToSocketAddrs,
    request_line: &str,
) -> io::Result<BufReader<TcpStream>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(request_line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    Ok(BufReader::new(stream))
}

/// [`open_request`], collecting the whole response: one string per line,
/// in arrival order (for sweeps: the progress lines, then the result).
pub fn request_lines(addr: impl ToSocketAddrs, request_line: &str) -> io::Result<Vec<String>> {
    open_request(addr, request_line)?.lines().collect()
}

/// A persistent **v2** wire session: one connection, many in-flight
/// requests, responses correlated by echoed id.
///
/// [`Session::send`] assigns ids; [`Session::recv`] reads the next
/// response line whoever it belongs to (how a pipelining client drives
/// many requests concurrently); [`Session::call`] is the sequential
/// convenience — send, then wait for that request's terminal response,
/// discarding its progress lines.
pub struct Session {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Session {
    /// Connects a new session.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Session> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        Ok(Session { reader: BufReader::new(stream), writer, next_id: 0 })
    }

    /// Sends one request under a fresh id and returns that id.
    pub fn send(&mut self, request: &ApiRequest) -> io::Result<u64> {
        self.next_id += 1;
        let id = self.next_id;
        let mut line = request.to_json_v2(id);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        Ok(id)
    }

    /// Reads the next raw response line (blocking), newline stripped.
    /// EOF mid-session surfaces as [`io::ErrorKind::UnexpectedEof`].
    /// Latency-sensitive clients that only need the envelope head can
    /// use this to skip the full [`WireResponse`] parse.
    pub fn recv_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the session"));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Reads the next response line (blocking) and parses it.  Protocol
    /// violations — EOF mid-session, an unparseable line — surface as
    /// [`io::ErrorKind::InvalidData`] / [`io::ErrorKind::UnexpectedEof`].
    pub fn recv(&mut self) -> io::Result<WireResponse> {
        let line = self.recv_line()?;
        WireResponse::from_json(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Sends `request` and blocks until its terminal response (anything
    /// but a `sweep_point`), discarding that request's progress lines.
    /// Responses for *other* ids arriving meanwhile are discarded too, so
    /// interleave `call` with outstanding [`Session::send`]s only when
    /// those responses are expendable.
    pub fn call(&mut self, request: &ApiRequest) -> io::Result<ApiResponse> {
        let id = self.send(request)?;
        loop {
            let wire = self.recv()?;
            if wire.id != Some(id) {
                continue;
            }
            match wire.response {
                ApiResponse::SweepPoint { .. } => continue,
                terminal => return Ok(terminal),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The sharding coordinator.
// ---------------------------------------------------------------------------

/// Splits one sweep across several worker daemons and merges the result.
///
/// Each worker receives the same [`SweepSpec`] with a distinct
/// round-robin [`SweepShard`] stripe, evaluates its points, and answers
/// with globally indexed reports; the coordinator reassembles them into
/// sweep order and ranks the union with the same
/// [`rank_reports`] the local explorer uses — so the outcome is
/// byte-identical to a single-daemon sweep.  Afterwards every worker's
/// [`EvalCache`] snapshot is exported, pooled, and imported back to all
/// workers: each shard ends up warm for the *whole* grid, not just its
/// stripe.
///
/// # Errors
///
/// Connection failures, a worker answering with a wire error, or an
/// incomplete merge (a worker returned fewer points than its stripe) all
/// surface as [`io::Error`]; no partial exploration is returned.
pub fn sharded_sweep(
    workers: &[SocketAddr],
    spec: &SweepSpec,
    rate: LineRate,
    constraints: &Constraints,
) -> io::Result<Exploration> {
    if workers.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "no shard workers given"));
    }
    let stride = u32::try_from(workers.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "too many shard workers"))?;
    type ShardReply = (usize, Vec<usize>, Vec<EvalReport>, String);
    let replies: Vec<io::Result<ShardReply>> = thread::scope(|s| {
        let handles: Vec<_> = workers
            .iter()
            .enumerate()
            .map(|(offset, addr)| {
                s.spawn(move || -> io::Result<ShardReply> {
                    let mut session = Session::connect(addr)?;
                    let request = ApiRequest::Sweep {
                        spec: spec.clone(),
                        rate,
                        constraints: *constraints,
                        shard: Some(SweepShard { offset: offset as u32, stride }),
                    };
                    let (total, indices, reports) = match session.call(&request)? {
                        ApiResponse::ShardResult { total, indices, reports } => {
                            (total, indices, reports)
                        }
                        other => return Err(protocol_error("shard_result", &other)),
                    };
                    let snapshot = match session.call(&ApiRequest::CacheExport)? {
                        ApiResponse::CacheSnapshot { body } => body,
                        other => return Err(protocol_error("cache_snapshot", &other)),
                    };
                    Ok((total, indices, reports, snapshot))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| Err(io::Error::other("shard worker thread panicked")))
            })
            .collect()
    });

    // Merge stripes back into sweep order and pool the caches.  The grid
    // size comes from the first reply and every later reply must agree —
    // tracked in an `Option` rather than by `slots.is_empty()`, because an
    // empty grid (`total == 0`) is a legitimate first answer and must still
    // flag a worker that later claims a non-empty grid.
    let mut slots: Vec<Option<EvalReport>> = Vec::new();
    let mut seen_total: Option<usize> = None;
    let pooled = EvalCache::new();
    for reply in replies {
        let (total, indices, reports, snapshot) = reply?;
        match seen_total {
            None => {
                seen_total = Some(total);
                slots.resize(total, None);
            }
            Some(seen) if seen != total => {
                return Err(io::Error::other(format!(
                    "shard workers disagree on the grid size ({seen} vs {total})"
                )));
            }
            Some(_) => {}
        }
        for (index, report) in indices.into_iter().zip(reports) {
            let slot = slots.get_mut(index).ok_or_else(|| {
                io::Error::other(format!("shard index {index} out of range 0..{total}"))
            })?;
            if slot.is_some() {
                return Err(io::Error::other(format!(
                    "two shard workers both answered sweep point {index}"
                )));
            }
            *slot = Some(report);
        }
        pooled
            .load_snapshot_str(&snapshot)
            .map_err(|e| io::Error::other(format!("unusable shard cache snapshot: {e}")))?;
    }
    let all: Vec<EvalReport> = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.ok_or_else(|| io::Error::other(format!("no shard evaluated sweep point {i}")))
        })
        .collect::<io::Result<_>>()?;
    let admitted = rank_reports(&all, constraints);

    // Share the pooled cache back so every worker is warm for the whole
    // grid on the next sweep.
    let (merged, _stats) = pooled.to_snapshot_string();
    for addr in workers {
        let mut session = Session::connect(addr)?;
        match session.call(&ApiRequest::CacheImport { body: merged.clone() })? {
            ApiResponse::CacheLoaded { .. } => {}
            other => return Err(protocol_error("cache_loaded", &other)),
        }
    }
    Ok(Exploration { all, admitted })
}

fn protocol_error(expected: &str, got: &ApiResponse) -> io::Error {
    match got {
        ApiResponse::Error(e) => io::Error::other(format!("server error: {e}")),
        other => io::Error::other(format!("expected {expected}, got {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_core::api::{ApiErrorCode, ConfigSpec, EvalSpec};
    use taco_core::RoutingTableKind;

    fn start(config: ServerConfig) -> (SocketAddr, thread::JoinHandle<io::Result<()>>) {
        let server = Server::bind(config).expect("bind loopback");
        let addr = server.local_addr();
        (addr, thread::spawn(move || server.run()))
    }

    fn shut_down(addr: SocketAddr) {
        let lines = request_lines(addr, &ApiRequest::Shutdown.to_json()).expect("shutdown");
        match ApiResponse::from_json(&lines[0]).expect("parse ack") {
            ApiResponse::ShutdownAck { .. } => {}
            other => panic!("expected shutdown_ack, got {other:?}"),
        }
    }

    #[test]
    fn status_then_shutdown_completes_the_run() {
        let (addr, handle) = start(ServerConfig::default());
        let lines = request_lines(addr, &ApiRequest::Status.to_json()).expect("status");
        assert_eq!(lines.len(), 1);
        match ApiResponse::from_json(&lines[0]).expect("parse status") {
            ApiResponse::Status(info) => {
                assert_eq!(info.in_flight, 0);
                assert_eq!(info.queued, 0);
                assert_eq!(info.max_pending, 4);
                assert!(!info.draining);
                assert_eq!(info.cache_entries, 0);
            }
            other => panic!("expected status_result, got {other:?}"),
        }
        shut_down(addr);
        handle.join().expect("server thread").expect("clean exit");
    }

    #[test]
    fn eval_responses_are_byte_stable_across_cache_hits() {
        let (addr, handle) = start(ServerConfig::default());
        let mut spec = EvalSpec::new(ConfigSpec::new(RoutingTableKind::Cam, 3, 1));
        spec.entries = 8;
        let line = ApiRequest::Eval(spec).to_json();
        let cold = request_lines(addr, &line).expect("cold eval");
        let warm = request_lines(addr, &line).expect("warm eval");
        assert_eq!(cold, warm, "cache hits must not change response bytes");
        assert_eq!(cold.len(), 1);
        match ApiResponse::from_json(&cold[0]).expect("parse eval result") {
            ApiResponse::EvalResult(report) => assert_eq!(report.table_entries, 8),
            other => panic!("expected eval_result, got {other:?}"),
        }
        shut_down(addr);
        handle.join().expect("server thread").expect("clean exit");
    }

    #[test]
    fn malformed_and_version_skewed_requests_get_structured_errors() {
        let (addr, handle) = start(ServerConfig::default());
        let cases = [
            ("this is not json", ApiErrorCode::BadRequest),
            ("{\"api_version\":\"v0\",\"kind\":\"status\"}", ApiErrorCode::VersionMismatch),
            ("{\"api_version\":\"v1\",\"kind\":\"status\",\"extra\":1}", ApiErrorCode::BadRequest),
        ];
        for (request, expected) in cases {
            let lines = request_lines(addr, request).expect("error response");
            assert_eq!(lines.len(), 1, "{request}");
            match ApiResponse::from_json(&lines[0]).expect("parse error") {
                ApiResponse::Error(e) => assert_eq!(e.code, expected, "{request}"),
                other => panic!("expected error, got {other:?}"),
            }
        }
        shut_down(addr);
        handle.join().expect("server thread").expect("clean exit");
    }

    #[test]
    fn second_shutdown_reports_shutting_down() {
        let (addr, handle) = start(ServerConfig::default());
        // Two concurrent shutdowns: exactly one gets the ack, the other a
        // structured shutting_down error (or a refused connection if it
        // arrives after the listener stopped — both are graceful).
        shut_down(addr);
        if let Ok(lines) = request_lines(addr, &ApiRequest::Shutdown.to_json()) {
            if let Some(first) = lines.first() {
                match ApiResponse::from_json(first).expect("parse") {
                    ApiResponse::Error(e) => assert_eq!(e.code, ApiErrorCode::ShuttingDown),
                    other => panic!("expected shutting_down, got {other:?}"),
                }
            }
        }
        handle.join().expect("server thread").expect("clean exit");
    }

    #[test]
    fn v2_session_multiplexes_ids_on_one_connection() {
        let (addr, handle) = start(ServerConfig::default());
        let mut session = Session::connect(addr).expect("connect");
        match session.call(&ApiRequest::Status).expect("status") {
            ApiResponse::Status(info) => assert!(!info.draining),
            other => panic!("expected status_result, got {other:?}"),
        }
        // The same session keeps answering — persistent by contract.
        let mut spec = EvalSpec::new(ConfigSpec::new(RoutingTableKind::Cam, 3, 1));
        spec.entries = 8;
        match session.call(&ApiRequest::Eval(spec)).expect("eval") {
            ApiResponse::EvalResult(report) => assert_eq!(report.table_entries, 8),
            other => panic!("expected eval_result, got {other:?}"),
        }
        shut_down(addr);
        handle.join().expect("server thread").expect("clean exit");
    }
}
