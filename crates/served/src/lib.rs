#![warn(missing_docs)]

//! `taco-served` — a long-running batch evaluation daemon.
//!
//! The paper's pitch is *fast turn-around*: evaluating an architecture
//! takes milliseconds once the simulator is warm, so the natural way to
//! serve a design team is a resident process that keeps the
//! [`EvalCache`] hot across requests.  This crate is that process — a
//! std-only TCP daemon speaking the versioned [`taco_core::api`] wire
//! protocol, one JSON line per request, newline-delimited JSON responses
//! back:
//!
//! * **single evaluations** ([`ApiRequest::Eval`]) and **whole sweeps**
//!   ([`ApiRequest::Sweep`]) run as queued batch jobs, fanned out over the
//!   `taco_core::pool` worker pool;
//! * sweeps stream per-point progress lines
//!   ([`ApiResponse::SweepPoint`]) while they run, via the
//!   [`SweepObserver`] trait;
//! * a bounded job queue provides admission control: beyond
//!   [`ServerConfig::max_pending`] in-flight jobs, submissions are
//!   rejected with a structured `429`-style [`ApiErrorCode::Busy`] error
//!   instead of queueing without bound (or hanging);
//! * on [`ApiRequest::Shutdown`] the daemon drains in-flight work,
//!   persists the cache to the configured snapshot path and exits
//!   gracefully; on boot it re-loads that snapshot, so a restarted daemon
//!   answers repeat requests byte-identically *and* instantly.
//!
//! Responses are byte-stable by construction (see
//! [`ApiResponse::to_json`]), so clients may pin them against golden
//! fixtures regardless of cache state.
//!
//! ```no_run
//! use taco_served::{request_lines, Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default())?;
//! let addr = server.local_addr();
//! std::thread::spawn(move || server.run());
//! let lines =
//!     request_lines(addr, "{\"api_version\":\"v1\",\"kind\":\"status\"}")?;
//! println!("{}", lines[0]);
//! # Ok::<(), std::io::Error>(())
//! ```

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::mpsc::{self, SyncSender};
use std::sync::{Condvar, Mutex};
use std::thread;
use std::time::Duration;

#[allow(unused_imports)] // doc links
use taco_core::api::ApiErrorCode;
use taco_core::api::{ApiError, ApiRequest, ApiResponse, StatusInfo};
use taco_core::{explore_with, pool, EvalCache, ExploreOptions, PointRecord, SweepObserver};

/// How long the daemon waits for a connected client to send its one
/// request line before giving up on the connection.  Bounds how long a
/// silent client can delay a graceful shutdown.
const READ_TIMEOUT: Duration = Duration::from_secs(60);

/// Bound of the per-job response channel.  A slow reader applies
/// backpressure to the sweep workers instead of buffering the whole
/// result set in memory.
const PROGRESS_BUFFER: usize = 64;

/// Daemon configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Address to listen on.  Port `0` picks an ephemeral port — read it
    /// back with [`Server::local_addr`].
    pub addr: String,
    /// Admission bound: jobs admitted but not yet fully answered.
    /// Submissions beyond it receive a structured `busy` error.  Values
    /// below 1 are treated as 1.
    pub max_pending: usize,
    /// Cache snapshot path: loaded (if present and usable) on
    /// [`Server::bind`], written on graceful shutdown.  `None` serves
    /// from a cold cache and persists nothing.
    pub snapshot: Option<PathBuf>,
    /// Worker threads for sweep fan-out (`0` = one per core, the
    /// [`pool::default_threads`] rule).
    pub threads: usize,
}

impl Default for ServerConfig {
    /// Loopback on an ephemeral port, 4 job slots, no snapshot, all
    /// cores.
    fn default() -> Self {
        ServerConfig { addr: "127.0.0.1:0".to_owned(), max_pending: 4, snapshot: None, threads: 0 }
    }
}

/// One admitted job: the parsed request plus the channel its response
/// lines flow back through (the connection handler drains the other
/// end).
struct Job {
    request: ApiRequest,
    tx: SyncSender<String>,
}

/// Queue state behind the one daemon mutex.
struct QueueInner {
    /// Admitted jobs not yet picked up by the runner.
    jobs: VecDeque<Job>,
    /// Jobs admitted and not yet fully written back (queued + running +
    /// streaming).  This — not `jobs.len()` — is what admission bounds:
    /// a job holds its slot until its client has the complete response.
    in_flight: usize,
    /// A shutdown has been requested; no further jobs are admitted.
    draining: bool,
    /// The drain finished; the runner and accept loop should exit.
    stopped: bool,
}

/// Everything the connection handlers, the job runner and the accept
/// loop share.
struct Shared {
    queue: Mutex<QueueInner>,
    /// Signalled when a job is queued or `stopped` is set (runner waits).
    work: Condvar,
    /// Signalled when `in_flight` drops (the shutdown drain waits).
    idle: Condvar,
    cache: EvalCache,
    max_pending: usize,
    threads: usize,
    snapshot: Option<PathBuf>,
    addr: SocketAddr,
}

impl Shared {
    fn status(&self) -> StatusInfo {
        let q = self.queue.lock().unwrap();
        StatusInfo {
            in_flight: q.in_flight as u64,
            max_pending: self.max_pending as u64,
            draining: q.draining,
            cache_entries: self.cache.len() as u64,
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
        }
    }
}

/// The daemon: a bound listener plus the shared queue and cache.
///
/// [`Server::bind`] acquires the port (and warms the cache from the
/// snapshot); [`Server::run`] serves until a client sends a `shutdown`
/// request.
pub struct Server {
    listener: TcpListener,
    shared: Shared,
}

impl Server {
    /// Binds the listener and prepares the cache.
    ///
    /// An existing snapshot at [`ServerConfig::snapshot`] is loaded into
    /// the cache; a corrupt, truncated or version-skewed snapshot is
    /// *discarded with a warning* on stderr — a bad file on disk must
    /// never keep the daemon from starting.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(config.addr.as_str())?;
        let addr = listener.local_addr()?;
        let cache = EvalCache::new();
        if let Some(path) = &config.snapshot {
            if path.exists() {
                match cache.load_snapshot(path) {
                    Ok(entries) => {
                        eprintln!(
                            "taco-served: warmed cache with {entries} entries from {}",
                            path.display()
                        );
                    }
                    Err(e) => eprintln!(
                        "taco-served: discarding unusable snapshot {}: {e}",
                        path.display()
                    ),
                }
            }
        }
        let threads = if config.threads == 0 { pool::default_threads() } else { config.threads };
        Ok(Server {
            listener,
            shared: Shared {
                queue: Mutex::new(QueueInner {
                    jobs: VecDeque::new(),
                    in_flight: 0,
                    draining: false,
                    stopped: false,
                }),
                work: Condvar::new(),
                idle: Condvar::new(),
                cache,
                max_pending: config.max_pending.max(1),
                threads,
                snapshot: config.snapshot,
                addr,
            },
        })
    }

    /// The bound address (the resolved port when the config asked for
    /// port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Serves requests until a graceful shutdown completes.
    ///
    /// Blocking: spawn it on a thread if the caller needs to keep
    /// working.  One scoped thread runs jobs FIFO; each accepted
    /// connection gets a scoped handler thread that reads one request
    /// line, answers (streaming, for sweeps) and closes.
    pub fn run(self) -> io::Result<()> {
        let shared = &self.shared;
        thread::scope(|s| {
            s.spawn(|| run_jobs(shared));
            for conn in self.listener.incoming() {
                if shared.queue.lock().unwrap().stopped {
                    break;
                }
                let Ok(stream) = conn else { continue };
                s.spawn(move || serve_connection(stream, shared));
            }
        });
        Ok(())
    }
}

/// Writes one response line and flushes it (clients read line-by-line,
/// so every line must hit the socket as soon as it exists).
fn write_line(writer: &mut TcpStream, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// One connection: read a request line, dispatch, answer, close.
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let Ok(read_half) = stream.try_clone() else { return };
    let mut line = String::new();
    if BufReader::new(read_half).read_line(&mut line).is_err() {
        return;
    }
    let mut writer = stream;
    let request = match ApiRequest::from_json(line.trim_end()) {
        Ok(request) => request,
        Err(e) => {
            let _ = write_line(&mut writer, &ApiResponse::Error(e).to_json());
            return;
        }
    };
    match request {
        ApiRequest::Status => {
            let _ = write_line(&mut writer, &ApiResponse::Status(shared.status()).to_json());
        }
        ApiRequest::Shutdown => shutdown(&mut writer, shared),
        job @ (ApiRequest::Eval(_) | ApiRequest::Sweep { .. }) => {
            submit_job(job, &mut writer, shared)
        }
    }
}

/// Admission control and response streaming for eval/sweep jobs.
fn submit_job(request: ApiRequest, writer: &mut TcpStream, shared: &Shared) {
    let rx = {
        let mut q = shared.queue.lock().unwrap();
        if q.draining || q.stopped {
            drop(q);
            let _ = write_line(writer, &ApiResponse::Error(ApiError::shutting_down()).to_json());
            return;
        }
        if q.in_flight >= shared.max_pending {
            let message = format!(
                "{} of {} job slots in use; retry after a slot drains",
                q.in_flight, shared.max_pending
            );
            drop(q);
            let _ = write_line(writer, &ApiResponse::Error(ApiError::busy(message)).to_json());
            return;
        }
        q.in_flight += 1;
        let (tx, rx) = mpsc::sync_channel(PROGRESS_BUFFER);
        q.jobs.push_back(Job { request, tx });
        shared.work.notify_one();
        rx
    };

    // Stream until the runner drops its sender.  If the client has gone
    // away, keep draining the channel anyway — the runner must never
    // block on a dead connection's backpressure.
    let mut sink_ok = true;
    while let Ok(line) = rx.recv() {
        if sink_ok {
            sink_ok = write_line(writer, &line).is_ok();
        }
    }

    let mut q = shared.queue.lock().unwrap();
    q.in_flight -= 1;
    shared.idle.notify_all();
}

/// Graceful shutdown: stop admitting, drain, persist, acknowledge, stop.
fn shutdown(writer: &mut TcpStream, shared: &Shared) {
    {
        let mut q = shared.queue.lock().unwrap();
        if q.draining || q.stopped {
            drop(q);
            let _ = write_line(writer, &ApiResponse::Error(ApiError::shutting_down()).to_json());
            return;
        }
        q.draining = true;
        while !(q.jobs.is_empty() && q.in_flight == 0) {
            q = shared.idle.wait(q).unwrap();
        }
    }
    // Snapshot failures degrade to `persisted: null` plus a warning —
    // shutdown must complete even on a read-only disk.
    let persisted =
        shared.snapshot.as_ref().and_then(|path| match shared.cache.save_snapshot(path) {
            Ok(stats) => Some(stats.persisted),
            Err(e) => {
                eprintln!(
                    "taco-served: could not persist cache snapshot to {}: {e}",
                    path.display()
                );
                None
            }
        });
    let _ = write_line(writer, &ApiResponse::ShutdownAck { persisted }.to_json());
    shared.queue.lock().unwrap().stopped = true;
    shared.work.notify_all();
    // Unblock the accept loop so `Server::run` can observe `stopped`.
    let _ = TcpStream::connect(shared.addr);
}

/// The job runner: pops admitted jobs FIFO and executes them, one at a
/// time (each sweep fans out internally over the worker pool).
fn run_jobs(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.stopped {
                    return;
                }
                q = shared.work.wait(q).unwrap();
            }
        };
        execute(shared, job);
    }
}

/// Runs one job, sending response lines through its channel.  Dropping
/// `job` (and with it the sender) is what tells the connection handler
/// the response is complete.
fn execute(shared: &Shared, job: Job) {
    let respond = |response: ApiResponse| {
        let _ = job.tx.send(response.to_json());
    };
    match &job.request {
        ApiRequest::Eval(spec) => match spec.to_request() {
            Ok(request) => {
                let (report, _cache_hit) = shared.cache.evaluate_recorded(&request);
                respond(ApiResponse::EvalResult(Box::new(report)));
            }
            Err(e) => respond(ApiResponse::Error(e)),
        },
        ApiRequest::Sweep { spec, rate, constraints } => {
            let progress = ChannelProgress { tx: Mutex::new(job.tx.clone()) };
            let opts = ExploreOptions {
                threads: shared.threads,
                cache: Some(&shared.cache),
                observer: &progress,
            };
            let exploration = explore_with(spec, *rate, constraints, &opts);
            respond(ApiResponse::SweepResult {
                admitted: exploration.admitted,
                reports: exploration.all,
            });
        }
        // `serve_connection` answers these inline; they are never queued.
        ApiRequest::Status | ApiRequest::Shutdown => {
            respond(ApiResponse::Error(ApiError::internal(
                "control requests are answered inline, never queued",
            )));
        }
    }
}

/// Streams [`ApiResponse::SweepPoint`] lines into a job's response
/// channel as the explorer's workers finish points (completion order).
///
/// The sender sits behind a mutex only because [`SweepObserver`]
/// requires `Sync` and `SyncSender` is not `Sync` on the project's
/// minimum toolchain.
struct ChannelProgress {
    tx: Mutex<SyncSender<String>>,
}

impl SweepObserver for ChannelProgress {
    fn on_point(&self, record: &PointRecord<'_>) {
        let line = ApiResponse::SweepPoint {
            index: record.index,
            total: record.total,
            label: record.report.config.label(),
            cache_hit: record.cache_hit,
            feasible: record.report.is_feasible(),
        }
        .to_json();
        let _ = self.tx.lock().unwrap().send(line);
    }
}

/// Connects, sends one request line and returns the reader for the
/// response stream — the client half of the protocol, used by the CLI
/// and the integration tests to read streamed sweep progress
/// incrementally.
pub fn open_request(
    addr: impl ToSocketAddrs,
    request_line: &str,
) -> io::Result<BufReader<TcpStream>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(request_line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    Ok(BufReader::new(stream))
}

/// [`open_request`], collecting the whole response: one string per line,
/// in arrival order (for sweeps: the progress lines, then the result).
pub fn request_lines(addr: impl ToSocketAddrs, request_line: &str) -> io::Result<Vec<String>> {
    open_request(addr, request_line)?.lines().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use taco_core::api::{ApiErrorCode, ConfigSpec, EvalSpec};
    use taco_core::RoutingTableKind;

    fn start(config: ServerConfig) -> (SocketAddr, thread::JoinHandle<io::Result<()>>) {
        let server = Server::bind(config).expect("bind loopback");
        let addr = server.local_addr();
        (addr, thread::spawn(move || server.run()))
    }

    fn shut_down(addr: SocketAddr) {
        let lines = request_lines(addr, &ApiRequest::Shutdown.to_json()).expect("shutdown");
        match ApiResponse::from_json(&lines[0]).expect("parse ack") {
            ApiResponse::ShutdownAck { .. } => {}
            other => panic!("expected shutdown_ack, got {other:?}"),
        }
    }

    #[test]
    fn status_then_shutdown_completes_the_run() {
        let (addr, handle) = start(ServerConfig::default());
        let lines = request_lines(addr, &ApiRequest::Status.to_json()).expect("status");
        assert_eq!(lines.len(), 1);
        match ApiResponse::from_json(&lines[0]).expect("parse status") {
            ApiResponse::Status(info) => {
                assert_eq!(info.in_flight, 0);
                assert_eq!(info.max_pending, 4);
                assert!(!info.draining);
                assert_eq!(info.cache_entries, 0);
            }
            other => panic!("expected status_result, got {other:?}"),
        }
        shut_down(addr);
        handle.join().expect("server thread").expect("clean exit");
    }

    #[test]
    fn eval_responses_are_byte_stable_across_cache_hits() {
        let (addr, handle) = start(ServerConfig::default());
        let mut spec = EvalSpec::new(ConfigSpec::new(RoutingTableKind::Cam, 3, 1));
        spec.entries = 8;
        let line = ApiRequest::Eval(spec).to_json();
        let cold = request_lines(addr, &line).expect("cold eval");
        let warm = request_lines(addr, &line).expect("warm eval");
        assert_eq!(cold, warm, "cache hits must not change response bytes");
        assert_eq!(cold.len(), 1);
        match ApiResponse::from_json(&cold[0]).expect("parse eval result") {
            ApiResponse::EvalResult(report) => assert_eq!(report.table_entries, 8),
            other => panic!("expected eval_result, got {other:?}"),
        }
        shut_down(addr);
        handle.join().expect("server thread").expect("clean exit");
    }

    #[test]
    fn malformed_and_version_skewed_requests_get_structured_errors() {
        let (addr, handle) = start(ServerConfig::default());
        let cases = [
            ("this is not json", ApiErrorCode::BadRequest),
            ("{\"api_version\":\"v0\",\"kind\":\"status\"}", ApiErrorCode::VersionMismatch),
            ("{\"api_version\":\"v1\",\"kind\":\"status\",\"extra\":1}", ApiErrorCode::BadRequest),
        ];
        for (request, expected) in cases {
            let lines = request_lines(addr, request).expect("error response");
            assert_eq!(lines.len(), 1, "{request}");
            match ApiResponse::from_json(&lines[0]).expect("parse error") {
                ApiResponse::Error(e) => assert_eq!(e.code, expected, "{request}"),
                other => panic!("expected error, got {other:?}"),
            }
        }
        shut_down(addr);
        handle.join().expect("server thread").expect("clean exit");
    }

    #[test]
    fn second_shutdown_reports_shutting_down() {
        let (addr, handle) = start(ServerConfig::default());
        // Two concurrent shutdowns: exactly one gets the ack, the other a
        // structured shutting_down error (or a refused connection if it
        // arrives after the listener stopped — both are graceful).
        shut_down(addr);
        if let Ok(lines) = request_lines(addr, &ApiRequest::Shutdown.to_json()) {
            if let Some(first) = lines.first() {
                match ApiResponse::from_json(first).expect("parse") {
                    ApiResponse::Error(e) => assert_eq!(e.code, ApiErrorCode::ShuttingDown),
                    other => panic!("expected shutting_down, got {other:?}"),
                }
            }
        }
        handle.join().expect("server thread").expect("clean exit");
    }
}
