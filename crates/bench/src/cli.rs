//! The shared argument parser behind every `taco-bench` binary.
//!
//! Eight binaries used to hand-roll eight slightly different argv loops;
//! this module replaces them with one declarative, testable parser so
//! every tool speaks the same dialect:
//!
//! * `--help`/`-h` prints a generated usage page and exits 0;
//! * boolean flags (`--csv`), valued options (`--scenario NAME`) and
//!   defaulted positionals (`[entries]`) are declared up front;
//! * unknown arguments, missing option values and malformed numbers are
//!   *loud* — a one-line error plus the usage synopsis, exit code 2 —
//!   instead of the old silent fall-back-to-default behaviour.
//!
//! The parse step ([`Cli::try_parse`]) is pure (no process exit, no IO),
//! which is what the unit tests drive; binaries use the
//! [`Cli::parse_or_exit`] wrapper.

use std::fmt::Write as _;
use std::str::FromStr;

/// A declared command-line interface: name, one-line description and the
/// accepted flags/options/positionals.
pub struct Cli {
    name: &'static str,
    about: &'static str,
    flags: Vec<(&'static str, &'static str)>,
    opts: Vec<(&'static str, &'static str, &'static str)>,
    positionals: Vec<(&'static str, &'static str, Option<String>)>,
}

/// The outcome of a successful parse: either the user asked for help, or
/// the arguments resolved against the declaration.
pub enum Parse {
    /// `--help`/`-h` was given; the caller should print [`Cli::help`].
    Help,
    /// Every argument resolved.
    Args(Parsed),
}

/// Resolved arguments.  Accessors take the *declared* name; asking for an
/// undeclared one is a programming error and panics.
pub struct Parsed {
    flags: Vec<&'static str>,
    opts: Vec<(&'static str, String)>,
    positionals: Vec<(&'static str, String)>,
}

impl Cli {
    /// A new interface declaration.
    pub fn new(name: &'static str, about: &'static str) -> Cli {
        Cli { name, about, flags: Vec::new(), opts: Vec::new(), positionals: Vec::new() }
    }

    /// Declares a boolean flag, e.g. `--csv`.
    pub fn flag(mut self, name: &'static str, help: &'static str) -> Cli {
        self.flags.push((name, help));
        self
    }

    /// Declares a valued option, e.g. `--scenario NAME`.
    pub fn opt(mut self, name: &'static str, metavar: &'static str, help: &'static str) -> Cli {
        self.opts.push((name, metavar, help));
        self
    }

    /// Declares a positional argument.  With a default it may be omitted;
    /// without one it is required.  Declaration order is argv order, and
    /// required positionals must precede defaulted ones.
    pub fn positional(
        mut self,
        name: &'static str,
        help: &'static str,
        default: Option<&str>,
    ) -> Cli {
        self.positionals.push((name, help, default.map(str::to_owned)));
        self
    }

    /// The one-line synopsis, e.g.
    /// `usage: table1 [options] [entries] [packet_bytes]`.
    pub fn usage(&self) -> String {
        let mut s = format!("usage: {}", self.name);
        if !self.flags.is_empty() || !self.opts.is_empty() {
            s.push_str(" [options]");
        }
        for (name, _, default) in &self.positionals {
            match default {
                Some(_) => {
                    let _ = write!(s, " [{name}]");
                }
                None => {
                    let _ = write!(s, " <{name}>");
                }
            }
        }
        s
    }

    /// The full generated help page.
    pub fn help(&self) -> String {
        let mut s = format!("{} — {}\n\n{}\n", self.name, self.about, self.usage());
        if !self.positionals.is_empty() {
            s.push_str("\narguments:\n");
            let width = self.positionals.iter().map(|(n, _, _)| n.len()).max().unwrap_or(0);
            for (name, help, default) in &self.positionals {
                let _ = write!(s, "  {name:<width$}  {help}");
                if let Some(d) = default {
                    let _ = write!(s, " (default: {d})");
                }
                s.push('\n');
            }
        }
        s.push_str("\noptions:\n");
        let label = |name: &str, metavar: &str| {
            if metavar.is_empty() {
                name.to_owned()
            } else {
                format!("{name} {metavar}")
            }
        };
        let mut rows: Vec<(String, &'static str)> =
            self.flags.iter().map(|&(n, h)| (n.to_owned(), h)).collect();
        rows.extend(self.opts.iter().map(|&(n, m, h)| (label(n, m), h)));
        rows.push(("--help".to_owned(), "print this help"));
        let width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (l, h) in rows {
            let _ = writeln!(s, "  {l:<width$}  {h}");
        }
        s
    }

    /// Resolves `args` (without the program name) against the declaration.
    /// Pure: errors come back as a message, help as [`Parse::Help`].
    pub fn try_parse<I>(&self, args: I) -> Result<Parse, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut flags = Vec::new();
        let mut opts: Vec<(&'static str, String)> = Vec::new();
        let mut given: Vec<String> = Vec::new();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            if arg == "--help" || arg == "-h" {
                return Ok(Parse::Help);
            }
            if let Some(&(name, _)) = self.flags.iter().find(|&&(n, _)| n == arg) {
                if !flags.contains(&name) {
                    flags.push(name);
                }
            } else if let Some(&(name, ..)) = self.opts.iter().find(|&&(n, ..)| n == arg) {
                let value = it.next().ok_or_else(|| format!("{name} needs a value"))?;
                if opts.iter().any(|(n, _)| *n == name) {
                    return Err(format!("{name} given twice"));
                }
                opts.push((name, value));
            } else if arg.starts_with('-')
                && arg.len() > 1
                && !arg[1..].starts_with(|c: char| c.is_ascii_digit())
            {
                return Err(format!("unknown option {arg:?}"));
            } else if given.len() < self.positionals.len() {
                given.push(arg);
            } else {
                return Err(format!("unexpected argument {arg:?}"));
            }
        }
        let mut positionals = Vec::new();
        for (i, (name, _, default)) in self.positionals.iter().enumerate() {
            match given.get(i).cloned().or_else(|| default.clone()) {
                Some(value) => positionals.push((*name, value)),
                None => return Err(format!("missing required argument <{name}>")),
            }
        }
        Ok(Parse::Args(Parsed { flags, opts, positionals }))
    }

    /// [`Cli::try_parse`] over the process arguments, with the standard
    /// exits: help → stdout + exit 0, errors → stderr + exit 2.
    pub fn parse_or_exit(&self) -> Parsed {
        self.parse_args_or_exit(std::env::args().skip(1).collect())
    }

    /// [`Cli::parse_or_exit`] over an explicit argument list — what
    /// subcommand-style binaries use after peeling the subcommand off.
    pub fn parse_args_or_exit(&self, args: Vec<String>) -> Parsed {
        match self.try_parse(args) {
            Ok(Parse::Help) => {
                println!("{}", self.help());
                std::process::exit(0);
            }
            Ok(Parse::Args(parsed)) => parsed,
            Err(message) => self.fail(&message),
        }
    }

    /// Reports a usage error the standard way: message plus synopsis on
    /// stderr, exit 2.  Binaries use it for post-parse validation too
    /// (bad numbers, unknown scenario names, …).
    pub fn fail(&self, message: &str) -> ! {
        eprintln!("{}: {message}", self.name);
        eprintln!("{}", self.usage());
        std::process::exit(2);
    }
}

impl Parsed {
    fn declared(&self, name: &str) -> &str {
        self.positionals
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
            .unwrap_or_else(|| panic!("positional {name:?} was never declared"))
    }

    /// Was the boolean flag given?
    pub fn flag(&self, name: &str) -> bool {
        self.flags.contains(&name)
    }

    /// The raw value of a valued option, if given.
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.opts.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// The raw value of a positional (its default when omitted).
    pub fn pos(&self, name: &str) -> &str {
        self.declared(name)
    }

    /// A positional parsed to `T`, with a readable error.
    pub fn pos_parsed<T: FromStr>(&self, name: &str) -> Result<T, String> {
        parse_value(name, self.declared(name))
    }

    /// An option parsed to `T`, with a readable error; `None` when absent.
    pub fn opt_parsed<T: FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        self.opt(name).map(|raw| parse_value(name, raw)).transpose()
    }
}

/// Parses `raw` as `T`, naming `what` in the error message.
pub fn parse_value<T: FromStr>(what: &str, raw: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("{what}: cannot parse {raw:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1_cli() -> Cli {
        Cli::new("table1", "regenerate the paper's Table 1")
            .flag("--csv", "emit CSV instead of the rendered table")
            .positional("entries", "routing-table size", Some("100"))
            .positional("packet_bytes", "assumed bytes per packet", Some("1040"))
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn parsed(cli: &Cli, list: &[&str]) -> Parsed {
        match cli.try_parse(args(list)).expect("parse") {
            Parse::Args(p) => p,
            Parse::Help => panic!("unexpected help"),
        }
    }

    #[test]
    fn defaults_apply_when_arguments_are_omitted() {
        let p = parsed(&table1_cli(), &[]);
        assert!(!p.flag("--csv"));
        assert_eq!(p.pos_parsed::<usize>("entries"), Ok(100));
        assert_eq!(p.pos_parsed::<u32>("packet_bytes"), Ok(1040));
    }

    #[test]
    fn flags_and_positionals_mix_in_any_order() {
        let p = parsed(&table1_cli(), &["64", "--csv", "84"]);
        assert!(p.flag("--csv"));
        assert_eq!(p.pos("entries"), "64");
        assert_eq!(p.pos("packet_bytes"), "84");
    }

    #[test]
    fn help_is_recognised_anywhere_and_lists_everything() {
        let cli = table1_cli();
        for list in [&["--help"][..], &["64", "-h"][..]] {
            assert!(matches!(cli.try_parse(args(list)), Ok(Parse::Help)));
        }
        let help = cli.help();
        for needle in ["table1 —", "usage:", "[entries]", "--csv", "--help", "default: 1040"] {
            assert!(help.contains(needle), "{needle:?} missing from:\n{help}");
        }
    }

    #[test]
    fn errors_are_loud_not_silent() {
        let cli = table1_cli();
        let err = |list: &[&str]| match cli.try_parse(args(list)) {
            Err(e) => e,
            Ok(_) => panic!("{list:?} must not parse"),
        };
        assert!(err(&["--cvs"]).contains("unknown option"));
        assert!(err(&["1", "2", "3"]).contains("unexpected argument"));
        // Malformed numbers surface at the typed accessor.
        let p = parsed(&cli, &["many"]);
        assert!(p.pos_parsed::<usize>("entries").unwrap_err().contains("many"));
    }

    #[test]
    fn valued_options_require_and_keep_their_value() {
        let cli = Cli::new("dse", "design-space exploration")
            .opt("--scenario", "NAME", "replay the named workload")
            .opt("--max-drops", "N", "drop bound");
        let p = parsed(&cli, &["--scenario", "burst-overload"]);
        assert_eq!(p.opt("--scenario"), Some("burst-overload"));
        assert_eq!(p.opt_parsed::<u64>("--max-drops"), Ok(None));
        let missing = cli.try_parse(args(&["--scenario"]));
        assert!(matches!(missing, Err(e) if e.contains("needs a value")));
        let twice = cli.try_parse(args(&["--scenario", "a", "--scenario", "b"]));
        assert!(matches!(twice, Err(e) if e.contains("given twice")));
    }

    #[test]
    fn required_positionals_are_enforced_and_negative_numbers_pass() {
        let cli = Cli::new("x", "test").positional("value", "a number", None);
        assert!(matches!(cli.try_parse(args(&[])), Err(e) if e.contains("missing required")));
        // A leading dash followed by a digit is a value, not an option.
        let p = parsed(&cli, &["-3.5"]);
        assert_eq!(p.pos_parsed::<f64>("value"), Ok(-3.5));
    }
}
