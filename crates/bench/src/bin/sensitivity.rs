//! Packet-size sensitivity of the Table 1 frequencies.
//!
//! The paper states the 10 Gbps target but not its traffic assumption; the
//! required clock scales linearly with the packet rate, i.e. inversely with
//! packet size.  This sweep shows where each routing-table organisation
//! crosses the 0.18 µm feasibility ceiling as packets shrink from jumbo
//! frames to the 84-byte minimum — the ratios between rows are constant,
//! which is why EXPERIMENTS.md compares shapes rather than absolute cells.
//!
//! ```text
//! cargo run -p taco-bench --release --bin sensitivity
//! ```

use std::time::Instant;

use taco_bench::cli::Cli;
use taco_core::{
    ArchConfig, EvalCache, EvalRequest, LineRate, PointRecord, StderrProgress, SweepObserver,
};
use taco_estimate::Estimator;
use taco_routing::TableKind;

const PACKET_BYTES: [u32; 6] = [84, 256, 512, 1040, 4096, 9018];

fn main() {
    Cli::new("sensitivity", "required clock vs packet-size assumption at 10 Gbps").parse_or_exit();
    let entries = 64;
    let ceiling = Estimator::new().max_frequency_hz();
    println!("required clock (MHz) at 10 Gbps vs packet size, {entries}-entry table");
    println!(
        "3BUS/1FU configuration; '*' marks cells above the {:.0} MHz 0.18um ceiling",
        ceiling / 1e6
    );
    println!();
    print!("{:<16}", "bytes/packet");
    for b in PACKET_BYTES {
        print!("{b:>10}");
    }
    println!();

    let cache = EvalCache::global();
    let observer = StderrProgress::new();
    for (i, kind) in TableKind::PAPER_KINDS.into_iter().enumerate() {
        // One simulation per kind: cycles are rate-independent, so evaluate
        // once (memoised in the process-global cache) and rescale.
        let started = Instant::now();
        let (base, cache_hit) = cache.evaluate_recorded(
            &EvalRequest::new(ArchConfig::three_bus_one_fu(kind))
                .rate(LineRate::new(10e9, PACKET_BYTES[0]))
                .entries(entries),
        );
        observer.on_point(&PointRecord {
            index: i,
            total: TableKind::PAPER_KINDS.len(),
            report: &base,
            cache_hit,
            wall: started.elapsed(),
            stats_json: base.stats.to_json(),
        });
        print!("{:<16}", kind.to_string());
        for bytes in PACKET_BYTES {
            let f = LineRate::new(10e9, bytes).required_frequency_hz(base.cycles_per_datagram);
            let mark = if f >= ceiling { "*" } else { "" };
            print!("{:>10}", format!("{:.0}{mark}", f / 1e6));
        }
        println!();
    }
    println!();
    println!("row ratios are packet-size independent; the crossing points move.");
}
