//! The scaling ablation behind Table 1: cycles per forwarded datagram as a
//! function of routing-table size, for each routing-table organisation and
//! architecture configuration.  This is the curve that explains *why* the
//! sequential organisation's required clock explodes while the CAM's stays
//! flat.
//!
//! ```text
//! cargo run -p taco-bench --release --bin scaling
//! ```
//!
//! Each series' sizes are simulated in parallel (`TACO_THREADS`
//! overrides the worker count) and memoised in the process-global
//! evaluation cache, so re-running a series within one process is free.

use std::time::Instant;

use taco_bench::cli::Cli;
use taco_bench::SCALING_SIZES;
use taco_core::{pool, scaling_sweep, ArchConfig, EvalCache, RoutingTableKind};
use taco_routing::TableKind;

fn main() {
    Cli::new("scaling", "cycles per datagram vs routing-table size, per organisation")
        .parse_or_exit();
    println!("cycles per datagram vs routing-table size (cycle-accurate simulation)");
    println!();
    eprintln!(
        "sweeping {} sizes per series on {} worker thread(s) (set {} to override)",
        SCALING_SIZES.len(),
        pool::default_threads(),
        pool::THREADS_ENV
    );
    let mut kinds = TableKind::PAPER_KINDS.to_vec();
    kinds.push(TableKind::Trie); // the software baseline, as a fourth series
    kinds.push(TableKind::Patricia); // path-compressed: depth tracks branching, not size
    for kind in kinds {
        println!("== {kind} ==");
        print!("{:<22}", "config \\ entries");
        for n in SCALING_SIZES {
            print!("{n:>9}");
        }
        println!();
        for config in [
            ArchConfig::one_bus_one_fu(kind),
            ArchConfig::three_bus_one_fu(kind),
            ArchConfig::three_bus_three_fu(kind),
        ] {
            let started = Instant::now();
            print!("{:<22}", config.machine.label());
            for (_, cycles) in scaling_sweep(&config, &SCALING_SIZES) {
                print!("{cycles:>9.0}");
            }
            println!();
            eprintln!("  {:<20} {:>8.1} ms", config.label(), started.elapsed().as_secs_f64() * 1e3);
        }
        println!();
    }
    let cache = EvalCache::global();
    eprintln!("evaluation cache: {} hits, {} misses", cache.hits(), cache.misses());
    let _: RoutingTableKind = TableKind::Trie; // same enum, two names
}
