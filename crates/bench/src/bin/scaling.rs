//! The scaling ablation behind Table 1: cycles per forwarded datagram as a
//! function of routing-table size, for each routing-table organisation and
//! architecture configuration.  This is the curve that explains *why* the
//! sequential organisation's required clock explodes while the CAM's stays
//! flat.
//!
//! ```text
//! cargo run -p taco-bench --release --bin scaling
//! ```

use taco_bench::SCALING_SIZES;
use taco_core::{scaling_sweep, ArchConfig, RoutingTableKind};
use taco_routing::TableKind;

fn main() {
    println!("cycles per datagram vs routing-table size (cycle-accurate simulation)");
    println!();
    let mut kinds = TableKind::PAPER_KINDS.to_vec();
    kinds.push(TableKind::Trie); // the software baseline, as a fourth series
    for kind in kinds {
        println!("== {kind} ==");
        print!("{:<22}", "config \\ entries");
        for n in SCALING_SIZES {
            print!("{n:>9}");
        }
        println!();
        for config in [
            ArchConfig::one_bus_one_fu(kind),
            ArchConfig::three_bus_one_fu(kind),
            ArchConfig::three_bus_three_fu(kind),
        ] {
            print!("{:<22}", config.machine.label());
            for (_, cycles) in scaling_sweep(&config, &SCALING_SIZES) {
                print!("{cycles:>9.0}");
            }
            println!();
        }
        println!();
    }
    let _: RoutingTableKind = TableKind::Trie; // same enum, two names
}
