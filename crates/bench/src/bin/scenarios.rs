//! Behavioural scenario sweep: every built-in workload replayed over the
//! paper's three routing-table organisations.
//!
//! ```text
//! cargo run -p taco-bench --release --bin scenarios [seed] [--json]
//! ```
//!
//! Each run is fully deterministic in the printed seed: the grid is fanned
//! out over the worker pool (`TACO_THREADS` overrides) and then re-run
//! serially, and the two passes must agree byte-for-byte — the bin fails
//! loudly if they ever diverge.  A multicore smoke follows: `table-churn`
//! replayed on 2- and 4-core systems under a hard wall-clock timeout, so
//! a coherence livelock fails the bin instead of hanging CI.  `--json`
//! prints one `ScenarioMetrics` JSON line per cell instead of the table.

use std::sync::mpsc;
use std::time::Duration;

use taco_bench::cli::Cli;
use taco_core::pool;
use taco_isa::{SystemConfig, Topology};
use taco_routing::TableKind;
use taco_workload::{run_scenario, ScenarioConfig, ScenarioMetrics, Workload, DEFAULT_SEED};

/// Per-tick service budget for the standalone sweep; kept fixed (rather
/// than derived from a cycle measurement, as `EvalRequest::workload` does)
/// so this bin isolates the *scenario* behaviour of the table kinds.
const SERVICE_PER_TICK: u32 = 24;

/// Input-buffer bound per line card, in datagrams.
const QUEUE_CAPACITY: u32 = 48;

fn sweep(seed: u64, threads: usize) -> Vec<ScenarioMetrics> {
    let cells: Vec<(Workload, TableKind)> = Workload::builtin()
        .into_iter()
        .map(|w| w.with_seed(seed))
        .flat_map(|w| TableKind::PAPER_KINDS.into_iter().map(move |kind| (w, kind)))
        .collect();
    pool::ordered_map(&cells, threads, |_, (workload, kind)| {
        let config = ScenarioConfig::new(*kind)
            .service_per_tick(SERVICE_PER_TICK)
            .queue_capacity(QUEUE_CAPACITY);
        run_scenario(workload, &config)
    })
}

/// Wall-clock ceiling for one multicore smoke cell.  The cells finish in
/// well under a second; the ceiling exists so a coherence-protocol
/// regression that livelocks the snooping loop fails this bin loudly
/// instead of hanging CI forever.
const SMOKE_TIMEOUT: Duration = Duration::from_secs(60);

/// Replays `table-churn` on multicore systems (the workload whose table
/// writes generate the most invalidation traffic) under a hard timeout,
/// and checks the runs are deterministic and actually measured coherence.
fn multicore_smoke(seed: u64) {
    let workload = Workload::table_churn().with_seed(seed);
    for (cores, topology) in [(2, Topology::SharedBus), (4, Topology::Mesh)] {
        let system = SystemConfig::with_cores(cores).topology(topology);
        let config = ScenarioConfig::new(TableKind::Cam)
            .service_per_tick(SERVICE_PER_TICK)
            .queue_capacity(QUEUE_CAPACITY)
            .system(system);
        let (tx, rx) = mpsc::channel();
        let worker = std::thread::spawn(move || {
            let first = run_scenario(&workload, &config);
            let second = run_scenario(&workload, &config);
            let _ = tx.send((first, second));
        });
        let (first, second) = rx.recv_timeout(SMOKE_TIMEOUT).unwrap_or_else(|_| {
            eprintln!(
                "multicore smoke: {cores}-core {} cell exceeded {}s — aborting",
                topology.name(),
                SMOKE_TIMEOUT.as_secs()
            );
            std::process::exit(1);
        });
        worker.join().expect("smoke worker panicked");
        assert_eq!(
            first.to_json(),
            second.to_json(),
            "multicore replay must be deterministic ({cores}-core {})",
            topology.name()
        );
        let coherence = first.coherence.unwrap_or_else(|| {
            panic!("multicore runs must measure coherence ({cores}-core {})", topology.name())
        });
        eprintln!(
            "multicore smoke: {cores}-core {} ok ({} reads, {} invalidations, {} stall cycles)",
            topology.name(),
            coherence.reads,
            coherence.invalidations,
            coherence.stall_cycles
        );
    }
}

fn main() {
    let default_seed = DEFAULT_SEED.to_string();
    let cli = Cli::new("scenarios", "replay every built-in workload over the three table kinds")
        .flag("--json", "print one ScenarioMetrics JSON line per cell instead of the table")
        .positional("seed", "deterministic scenario seed", Some(&default_seed));
    let args = cli.parse_or_exit();
    let json = args.flag("--json");
    let seed: u64 = args.pos_parsed("seed").unwrap_or_else(|e| cli.fail(&e));

    let threads = pool::default_threads();
    eprintln!(
        "scenario sweep: {} workloads x {} kinds, seed {seed:#x}, {threads} worker thread(s)",
        Workload::builtin().len(),
        TableKind::PAPER_KINDS.len(),
    );

    let parallel = sweep(seed, threads);
    let serial = sweep(seed, 1);
    let agree = parallel.iter().zip(&serial).all(|(a, b)| a.to_json() == b.to_json());
    assert!(agree, "parallel sweep diverged from the serial reference");
    eprintln!("parallel == serial: ok ({} cells)", parallel.len());

    multicore_smoke(seed);

    if json {
        for m in &parallel {
            println!("{}", m.to_json());
        }
        return;
    }

    println!(
        "{:<18} {:<14} {:>8} {:>9} {:>8} {:>7} {:>9} {:>8} {:>11}",
        "scenario",
        "table",
        "offered",
        "forwarded",
        "dropped",
        "queue",
        "lat(avg)",
        "updates",
        "thru/tick"
    );
    let mut last = "";
    for m in &parallel {
        let name = if m.scenario == last {
            ""
        } else {
            last = m.scenario;
            m.scenario
        };
        println!(
            "{:<18} {:<14} {:>8} {:>9} {:>8} {:>7} {:>9} {:>8} {:>11}",
            name,
            m.kind.to_string(),
            m.offered,
            m.forwarded,
            m.dropped(),
            m.max_queue_depth,
            format!("{:.1}", m.latency.mean_milli() as f64 / 1e3),
            m.table_updates,
            format!("{:.2}", m.throughput_milli as f64 / 1e3),
        );
    }
    println!();
    println!(
        "service {SERVICE_PER_TICK}/tick, queue capacity {QUEUE_CAPACITY}; \
         rerun with the same seed for byte-identical metrics"
    );
}
