//! Regenerates the extended Table 1: estimated minimum clock frequencies,
//! bus utilisation, processor areas and average power consumption for the
//! twelve routing-table × architecture configurations (the paper's nine
//! plus the three PATRICIA rows).
//!
//! ```text
//! cargo run -p taco-bench --release --bin table1 [entries] [packet_bytes] [--csv]
//! ```
//!
//! Evaluations go through the process-global `EvalCache`, so regenerating
//! the table after another sweep in the same process is free; the cache
//! tally is reported on stderr.

use taco_bench::cli::Cli;
use taco_core::{table1, EvalCache, LineRate};

fn main() {
    let cli = Cli::new("table1", "regenerate the paper's Table 1")
        .flag("--csv", "emit CSV instead of the rendered table")
        .positional("entries", "routing-table size", Some("100"))
        .positional("packet_bytes", "assumed bytes per packet", Some("1040"));
    let args = cli.parse_or_exit();
    let csv = args.flag("--csv");
    let entries: usize = args.pos_parsed("entries").unwrap_or_else(|e| cli.fail(&e));
    let packet_bytes: u32 = args.pos_parsed("packet_bytes").unwrap_or_else(|e| cli.fail(&e));
    let rate = LineRate::new(10e9, packet_bytes);

    if csv {
        print!("{}", table1::to_csv(&table1::table1(rate, entries)));
        report_cache();
        return;
    }

    println!("Table 1 — 10 Gbps line rate, {entries}-entry routing table, {rate}");
    println!("(CAM rows exclude the external CAM chip, as in the paper; its");
    println!(" ~1.75 W average is reported separately in EXPERIMENTS.md)");
    println!();
    let reports = table1::table1(rate, entries);
    print!("{}", table1::render(&reports));

    println!();
    println!("paper's corresponding \"Required speed\" column:");
    println!("  sequential    : 6 GHz / 2 GHz / 1 GHz");
    println!("  balanced tree : 1.2 GHz / 600 MHz / 250 MHz");
    println!("  CAM           : 118 MHz / 40 MHz / 35 MHz");
    report_cache();
}

fn report_cache() {
    let cache = EvalCache::global();
    eprintln!(
        "evaluation cache: {} hits, {} misses, {} points stored",
        cache.hits(),
        cache.misses(),
        cache.len()
    );
}
