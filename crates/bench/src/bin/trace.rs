//! Cycle-level trace inspection for any Table 1 cell.
//!
//! ```text
//! cargo run -p taco-bench --release --bin trace -- [kind] [config] [entries] \
//!     [--cycles N] [--chrome PATH] [--smoke ITERS]
//! ```
//!
//! `kind` is a routing-table organisation (`sequential`, `balanced-tree`,
//! `cam`, `trie`) and `config` a machine shape (`1x1`, `3x1`, `3x3`).
//! Renders an ASCII per-cycle bus-occupancy strip (one row per bus, one
//! column per cycle) for the chosen cell, from a `RingTracer` capture of
//! the measurement run.  `--chrome PATH` additionally writes the same run
//! as Chrome `about://tracing` JSON (load it in Perfetto or
//! `chrome://tracing`).
//!
//! `--smoke ITERS` runs the perf-gate smoke instead: ITERS uncached
//! nine-cell Table 1 evaluations with the tracer disabled, printing the
//! total wall time in milliseconds on stdout (the number
//! `scripts/verify.sh` compares against its checked-in baseline).
//!
//! `--bench-json PATH` additionally measures every cell under both
//! simulator step modes (compiled vs interpretive, ITERS uncached runs
//! each) and writes the per-cell wall times, totals, and speedups as JSON
//! — the `BENCH_table1.json` artefact `scripts/verify.sh` refreshes.

use std::time::Instant;

use taco_bench::cli::Cli;
use taco_core::api::{parse_machine_spec, parse_table_kind};
use taco_core::{evaluate_request, trace_request, ArchConfig, EvalRequest, StepMode};
use taco_sim::{ChromeTracer, RingTracer, TraceEvent};

/// Wall milliseconds for `iters` uncached evaluations of `cell` under
/// `mode` — straight through the pipeline, deliberately no EvalCache, so
/// every iteration pays the full simulation cost.
fn time_cell(cell: &ArchConfig, mode: StepMode, iters: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        let report = evaluate_request(&EvalRequest::new(cell.clone()).step_mode(mode));
        assert!(report.sim_error.is_none(), "smoke cell failed: {report}");
    }
    start.elapsed().as_secs_f64() * 1e3
}

fn smoke(iters: u32) {
    let start = Instant::now();
    for _ in 0..iters {
        for cell in ArchConfig::table1_cells() {
            let report = evaluate_request(&EvalRequest::new(cell.clone()));
            assert!(report.sim_error.is_none(), "smoke cell failed: {report}");
        }
    }
    let ms = start.elapsed().as_secs_f64() * 1e3;
    println!("{ms:.0}");
}

/// The perf-gate baseline (total nine-cell ms), when running from the repo
/// root; `null` in the JSON otherwise.
fn read_baseline() -> Option<f64> {
    std::fs::read_to_string("scripts/table1-smoke-baseline.txt").ok()?.trim().parse().ok()
}

fn bench_json(iters: u32, path: &str) {
    let cells = ArchConfig::table1_cells();
    // Warm the process-global program cache so both modes measure the
    // steady state (scheduling cost is paid once per process, not per
    // evaluation, and must not be charged to whichever mode runs first).
    for cell in &cells {
        let _ = evaluate_request(&EvalRequest::new(cell.clone()));
    }
    let rows: Vec<(String, f64, f64)> = cells
        .iter()
        .map(|cell| {
            let interpretive = time_cell(cell, StepMode::Interpretive, iters);
            let compiled = time_cell(cell, StepMode::Compiled, iters);
            (cell.label(), compiled, interpretive)
        })
        .collect();
    let compiled_total: f64 = rows.iter().map(|r| r.1).sum();
    let interpretive_total: f64 = rows.iter().map(|r| r.2).sum();

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"iters\": {iters},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, (label, compiled, interpretive)) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"label\": \"{label}\", \"compiled_ms\": {compiled:.2}, \
             \"interpretive_ms\": {interpretive:.2}, \"speedup\": {:.2}}}{sep}\n",
            interpretive / compiled
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"compiled_total_ms\": {compiled_total:.2},\n"));
    json.push_str(&format!("  \"interpretive_total_ms\": {interpretive_total:.2},\n"));
    json.push_str(&format!(
        "  \"speedup_vs_interpretive\": {:.2},\n",
        interpretive_total / compiled_total
    ));
    match read_baseline() {
        Some(baseline) => {
            json.push_str(&format!("  \"baseline_total_ms\": {baseline:.2},\n"));
            json.push_str(&format!(
                "  \"speedup_vs_baseline\": {:.2}\n",
                baseline / compiled_total
            ));
        }
        None => {
            json.push_str("  \"baseline_total_ms\": null,\n");
            json.push_str("  \"speedup_vs_baseline\": null\n");
        }
    }
    json.push_str("}\n");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "bench: compiled {compiled_total:.0} ms vs interpretive {interpretive_total:.0} ms \
         over {iters} runs -> {path}"
    );
}

/// Renders the first `limit` cycles of the capture as one character per
/// bus-cycle: `#` executed move, `~` squashed move, `.` idle; plus a stall
/// row (`S` RTU interlock, `F` injected fault) and a datagram row (`v`
/// begin, `^` end, `-` in flight).
fn render_strip(events: &RingTracer, buses: u8, limit: usize) -> String {
    let width =
        events.events().iter().map(|e| e.cycle() as usize + 1).max().unwrap_or(0).min(limit);
    let rows = usize::from(buses);
    let mut bus_rows = vec![vec![b'.'; width]; rows];
    let mut stall_row = vec![b'.'; width];
    let mut dgram_row = vec![b'.'; width];
    let mut stall_from: Option<usize> = None;
    let mut fault_from: Option<usize> = None;
    let mut dgram_from: Vec<(u32, usize)> = Vec::new();
    let mark = |row: &mut Vec<u8>, cycle: u64, ch: u8| {
        if (cycle as usize) < width {
            row[cycle as usize] = ch;
        }
    };
    for event in events.events() {
        match *event {
            TraceEvent::MoveExecuted { cycle, bus, .. } => {
                mark(&mut bus_rows[usize::from(bus)], cycle, b'#');
            }
            TraceEvent::MoveSquashed { cycle, bus, .. } => {
                mark(&mut bus_rows[usize::from(bus)], cycle, b'~');
            }
            TraceEvent::StallBegin { cycle } => stall_from = Some(cycle as usize),
            TraceEvent::StallEnd { cycle } => {
                if let Some(from) = stall_from.take() {
                    let from = from.min(width);
                    let to = (cycle as usize).min(width).max(from);
                    stall_row[from..to].fill(b'S');
                }
            }
            TraceEvent::FaultStallBegin { cycle } => fault_from = Some(cycle as usize),
            TraceEvent::FaultStallEnd { cycle } => {
                if let Some(from) = fault_from.take() {
                    let from = from.min(width);
                    let to = (cycle as usize).min(width).max(from);
                    stall_row[from..to].fill(b'F');
                }
            }
            TraceEvent::DatagramBegin { cycle, ptr, .. } => {
                dgram_from.push((ptr, cycle as usize));
                mark(&mut dgram_row, cycle, b'v');
            }
            TraceEvent::DatagramEnd { cycle, ptr, .. } => {
                if let Some(i) = dgram_from.iter().position(|(p, _)| *p == ptr) {
                    let (_, from) = dgram_from.remove(i);
                    let to = (cycle as usize).min(width);
                    for slot in &mut dgram_row[(from + 1).min(to)..to] {
                        if *slot == b'.' {
                            *slot = b'-';
                        }
                    }
                }
                mark(&mut dgram_row, cycle, b'^');
            }
            TraceEvent::FuTriggered { .. } | TraceEvent::FuRetired { .. } => {}
        }
    }
    // An unclosed stall extends to the edge of the strip.
    if let Some(from) = stall_from {
        stall_row[from.min(width)..].fill(b'S');
    }
    if let Some(from) = fault_from {
        stall_row[from.min(width)..].fill(b'F');
    }

    const CHUNK: usize = 100;
    let mut out = String::new();
    let row_str = |row: &[u8]| String::from_utf8_lossy(row).into_owned();
    for start in (0..width).step_by(CHUNK) {
        let end = (start + CHUNK).min(width);
        out.push_str(&format!("cycles {start}..{end}\n"));
        for (b, row) in bus_rows.iter().enumerate() {
            out.push_str(&format!("  bus{b}  |{}|\n", row_str(&row[start..end])));
        }
        out.push_str(&format!("  stall |{}|\n", row_str(&stall_row[start..end])));
        out.push_str(&format!("  dgram |{}|\n", row_str(&dgram_row[start..end])));
    }
    out
}

fn main() {
    let cli = Cli::new("trace", "cycle-level trace inspection for any Table 1 cell")
        .opt("--cycles", "N", "cycles of the occupancy strip to render")
        .opt("--chrome", "PATH", "also write the run as Chrome about://tracing JSON")
        .opt("--smoke", "ITERS", "perf-gate smoke: ITERS uncached nine-cell runs, print wall ms")
        .opt("--bench-json", "PATH", "write per-cell compiled-vs-interpretive wall times as JSON")
        .positional("kind", "table organisation: sequential, balanced-tree, cam, trie", Some("cam"))
        .positional("config", "machine shape: 1x1, 3x1, 3x3 (Table 1 labels accepted)", Some("3x1"))
        .positional("entries", "routing-table size", Some("16"));
    let args = cli.parse_or_exit();
    let smoke_iters = args.opt_parsed::<u32>("--smoke").unwrap_or_else(|e| cli.fail(&e));
    if let Some(path) = args.opt("--bench-json") {
        bench_json(smoke_iters.unwrap_or(10), path);
        return;
    }
    if let Some(iters) = smoke_iters {
        smoke(iters);
        return;
    }
    let limit: usize = args.opt_parsed("--cycles").unwrap_or_else(|e| cli.fail(&e)).unwrap_or(300);
    let chrome_path = args.opt("--chrome").map(str::to_owned);
    // The same name parsers the wire API uses — one validation dialect
    // across the CLI, the daemon and the builder.
    let kind = parse_table_kind(args.pos("kind")).unwrap_or_else(|e| cli.fail(&e));
    let config = parse_machine_spec(kind, args.pos("config"))
        .and_then(|spec| spec.to_config().map_err(|e| e.to_string()))
        .unwrap_or_else(|e| cli.fail(&e));
    let entries: usize = args.pos_parsed("entries").unwrap_or_else(|e| cli.fail(&e));

    let request = EvalRequest::new(config.clone()).entries(entries);
    let report = request.run();
    if let Some(e) = &report.sim_error {
        eprintln!("{} is not simulatable: {e}", config.label());
        std::process::exit(1);
    }
    println!("{report}");
    println!();

    let mut ring = RingTracer::new(4_000_000);
    let stats = match trace_request(&request, &mut ring) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("traced replay failed: {e}");
            std::process::exit(1);
        }
    };
    if !ring.is_complete() {
        eprintln!("note: capture truncated, {} oldest events dropped", ring.dropped());
    }
    println!(
        "measurement run: {} cycles, {} stalled, {} moves ({} squashed)",
        stats.cycles, stats.stall_cycles, stats.moves_executed, stats.moves_squashed
    );
    println!("legend: # move  ~ squashed  S rtu stall  v/^ datagram in/out  - in flight");
    println!();
    print!("{}", render_strip(&ring, config.machine.buses(), limit));
    if stats.cycles as usize > limit {
        println!("... {} more cycles (raise --cycles to see them)", stats.cycles as usize - limit);
    }

    if let Some(path) = chrome_path {
        let mut chrome = ChromeTracer::new(config.machine.buses());
        match trace_request(&request, &mut chrome) {
            Ok(stats) => match std::fs::write(&path, chrome.finish(stats.cycles)) {
                Ok(()) => println!("\nchrome trace written to {path}"),
                Err(e) => {
                    eprintln!("could not write {path}: {e}");
                    std::process::exit(1);
                }
            },
            Err(e) => {
                eprintln!("chrome replay failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
