//! Generates a self-contained markdown reproduction report with *live*
//! numbers: Table 1 at both traffic operating points, the scaling sweep and
//! the paper-claim checklist — the data behind EXPERIMENTS.md, regenerated
//! on demand so readers can diff their machine's results against the
//! shipped ones.
//!
//! ```text
//! cargo run -p taco-bench --release --bin report > report.md
//! ```

use taco_bench::cli::Cli;
use taco_bench::SCALING_SIZES;
use taco_core::{scaling_sweep, table1, ArchConfig, LineRate};
use taco_estimate::Estimator;
use taco_routing::TableKind;

fn main() {
    Cli::new("report", "live markdown reproduction report with the paper-claim checklist")
        .parse_or_exit();
    println!("# TACO IPv6 reproduction report (generated)");
    println!();
    println!(
        "Technology ceiling: {:.0} MHz (0.18 um).  All numbers measured live by",
        Estimator::new().max_frequency_hz() / 1e6
    );
    println!("cycle-accurate simulation on this machine; see EXPERIMENTS.md for the");
    println!("paper-vs-measured discussion.");

    for (label, rate, entries) in [
        ("1040 B average packets", LineRate::TEN_GBE, 100usize),
        ("84 B minimum frames", LineRate::TEN_GBE_MIN_FRAMES, 100),
    ] {
        println!();
        println!("## Table 1 at {label} ({rate})");
        println!();
        println!("| table | config | cycles/datagram | bus util | required | estimate |");
        println!("|---|---|---|---|---|---|");
        for r in table1::table1(rate, entries) {
            println!(
                "| {} | {} | {:.0} | {:.0}% | {} | {} |",
                r.config.table,
                r.config.machine.label(),
                r.cycles_per_datagram,
                r.bus_utilization * 100.0,
                table1::format_frequency(r.required_frequency_hz),
                r.estimate
            );
        }
    }

    println!();
    println!("## Scaling: cycles per datagram vs routing-table size");
    println!();
    print!("| table \\ entries |");
    for n in SCALING_SIZES {
        print!(" {n} |");
    }
    println!();
    print!("|---|");
    for _ in SCALING_SIZES {
        print!("---|");
    }
    println!();
    let mut kinds = TableKind::PAPER_KINDS.to_vec();
    kinds.push(TableKind::Trie);
    kinds.push(TableKind::Patricia);
    for kind in kinds {
        let config = ArchConfig::one_bus_one_fu(kind);
        print!("| {kind} (1 bus) |");
        for (_, cycles) in scaling_sweep(&config, &SCALING_SIZES) {
            print!(" {cycles:.0} |");
        }
        println!();
    }

    println!();
    println!("## Paper-claim checklist");
    println!();
    let t = table1::table1(LineRate::TEN_GBE, 100);
    let f = |k: TableKind, c: usize| {
        let row = TableKind::PAPER_KINDS.iter().position(|x| *x == k).expect("paper kind");
        t[row * 3 + c].required_frequency_hz
    };
    let checks: Vec<(bool, String)> = vec![
        (
            f(TableKind::Sequential, 0) > f(TableKind::BalancedTree, 0)
                && f(TableKind::BalancedTree, 0) > f(TableKind::Cam, 0),
            "sequential > tree > CAM in required clock (every config)".into(),
        ),
        (
            f(TableKind::Sequential, 0) / f(TableKind::Sequential, 1) > 1.8,
            format!(
                "3 buses cut the sequential clock by {:.1}x (paper: 3.0x)",
                f(TableKind::Sequential, 0) / f(TableKind::Sequential, 1)
            ),
        ),
        (
            f(TableKind::Cam, 1) / f(TableKind::Cam, 2) < 1.25,
            "extra FUs barely help the CAM row (paper's conclusion)".into(),
        ),
        (!t[0].is_feasible(), "sequential 1-bus is NA on 0.18 um".into()),
        (
            t[7].is_feasible() && f(TableKind::Cam, 1) < 150e6,
            "CAM 3-bus runs at tens of MHz".into(),
        ),
    ];
    for (ok, what) in checks {
        println!("- [{}] {}", if ok { 'x' } else { ' ' }, what);
    }
}
