//! `tracegen` — flow-trace generator and replay micro-benchmark.
//!
//! Exercises the whole `taco_workload::trace` pipeline end to end:
//! generate a Raicu-shaped binary flow trace, write it to disk, read it
//! back through the strict parser, and replay it through the scenario
//! engine — timing each stage and printing one JSON line with the
//! measurements.  The read-back trace must digest-match the generated
//! one and the replay must account for every packet; the bin fails
//! loudly otherwise, which is what makes it a useful smoke test
//! (`scripts/verify.sh` runs it under a hard timeout).
//!
//! ```text
//! cargo run -p taco-bench --release --bin tracegen -- \
//!     [--seed N] [--ticks N] [--flows N] [--entries N] \
//!     [--out PATH] [--json PATH]
//! ```
//!
//! Without `--out` the trace round-trips through a temporary file that is
//! removed afterwards; with it, the written trace is kept — the way the
//! EXPERIMENTS.md reference trace is produced.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::exit;
use std::time::Instant;

use taco_bench::cli::Cli;
use taco_workload::{run_trace_replay, FlowTrace, ScenarioConfig, TraceGen};

/// Per-tick service budget, matching the standalone `scenarios` bin: the
/// replay isolates trace mechanics, not a measured processor speed.
const SERVICE_PER_TICK: u32 = 24;

fn millis(from: Instant) -> u128 {
    from.elapsed().as_millis()
}

fn main() {
    let cli = Cli::new("tracegen", "flow-trace generator and replay micro-benchmark")
        .opt("--seed", "N", "trace seed (default 1)")
        .opt("--ticks", "N", "trace length in ticks (default 2000)")
        .opt("--flows", "N", "concurrent flow target (default 64)")
        .opt("--entries", "N", "routing-table entries (default 100)")
        .opt("--out", "PATH", "keep the written trace at PATH")
        .opt("--json", "PATH", "also write the timing JSON artefact to PATH");
    let args = cli.parse_or_exit();
    let seed: u64 = args.opt_parsed("--seed").unwrap_or_else(|e| cli.fail(&e)).unwrap_or(1);
    let ticks: u32 = args.opt_parsed("--ticks").unwrap_or_else(|e| cli.fail(&e)).unwrap_or(2000);
    let flows: u32 = args.opt_parsed("--flows").unwrap_or_else(|e| cli.fail(&e)).unwrap_or(64);
    let entries: u32 = args.opt_parsed("--entries").unwrap_or_else(|e| cli.fail(&e)).unwrap_or(100);
    if ticks == 0 || flows == 0 || entries == 0 {
        cli.fail("--ticks, --flows and --entries must all be at least 1");
    }

    let keep = args.opt("--out").map(PathBuf::from);
    let path = keep.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("taco-tracegen-{}.trace", std::process::id()))
    });

    let t = Instant::now();
    let trace = TraceGen::generate(seed, ticks, flows, entries);
    let gen_ms = millis(t);

    let t = Instant::now();
    trace.write(&path).unwrap_or_else(|e| {
        eprintln!("tracegen: cannot write {}: {e}", path.display());
        exit(1);
    });
    let write_ms = millis(t);

    let t = Instant::now();
    let read_back = FlowTrace::read(&path).unwrap_or_else(|e| {
        eprintln!("tracegen: cannot read {} back: {e}", path.display());
        exit(1);
    });
    let read_ms = millis(t);
    if keep.is_none() {
        std::fs::remove_file(&path).ok();
    }
    if read_back.digest() != trace.digest() {
        eprintln!(
            "tracegen: digest drift across the disk round trip ({:#018x} vs {:#018x})",
            read_back.digest(),
            trace.digest()
        );
        exit(1);
    }

    let t = Instant::now();
    let config =
        ScenarioConfig::new(taco_routing::TableKind::Cam).service_per_tick(SERVICE_PER_TICK);
    let metrics = run_trace_replay(&read_back, &config, None);
    let replay_ms = millis(t);
    let stats = metrics.flows.unwrap_or_else(|| {
        eprintln!("tracegen: replay produced no per-flow section");
        exit(1);
    });
    let records = read_back.records().len();
    if stats.packets as usize != records {
        eprintln!("tracegen: replay offered {} of {records} trace records", stats.packets);
        exit(1);
    }

    let json = format!(
        "{{\"seed\":{seed},\"ticks\":{ticks},\"flows\":{flows},\"entries\":{entries},\
         \"records\":{records},\"digest\":{digest},\"gen_ms\":{gen_ms},\"write_ms\":{write_ms},\
         \"read_ms\":{read_ms},\"replay_ms\":{replay_ms}}}",
        digest = trace.digest(),
    );
    println!("{json}");
    if let Some(artefact) = args.opt("--json") {
        let write = std::fs::File::create(artefact)
            .and_then(|mut f| writeln!(f, "{json}").and_then(|()| f.flush()));
        if let Err(e) = write {
            eprintln!("tracegen: cannot write {artefact}: {e}");
            exit(1);
        }
    }
}
