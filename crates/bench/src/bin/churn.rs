//! Internet-scale BGP churn smoke: the `table-churn` scenario at 100k
//! prefixes, proving the arena-backed engines stay memory-bounded while
//! routes are withdrawn and re-advertised under live traffic.
//!
//! ```text
//! cargo run -p taco-bench --release --bin churn \
//!     [entries] [--kinds LIST] [--ticks N] [--json]
//! ```
//!
//! For every requested organisation the bin replays the same seeded
//! BGP-shaped churn workload twice — at `ticks` and at `2 x ticks` — and
//! requires the `table_memory_words` high-water mark to be identical and
//! non-zero in both runs: twice the churn cycles, zero extra memory, or
//! the arena leaks and the bin exits non-zero.  Output (one
//! `ScenarioMetrics` JSON line per kind with `--json`) is byte-stable,
//! so `scripts/verify.sh` gates it against a committed baseline.
//!
//! The default kind list is `patricia,trie` — the arena engines the
//! invariant is about.  The paper's own organisations are *structurally*
//! unable to churn at this scale (the balanced tree rebuilds its segment
//! array on every single route update, the sequential scan pays O(n) per
//! probe), which is exactly the Table 1 scaling story EXPERIMENTS.md
//! tells; asking for them here is allowed but will be slow.

use taco_bench::cli::Cli;
use taco_core::api::parse_table_kind;
use taco_routing::TableKind;
use taco_workload::{run_scenario, ScenarioConfig, ScenarioMetrics, Workload, DEFAULT_SEED};

/// Churn cadence: a withdraw or re-advertise event every this many ticks.
const CHURN_EVERY: u32 = 20;

/// Routes withdrawn (then re-advertised) per churn event.
const CHURN_SIZE: u32 = 500;

/// Data datagrams injected per tick during the measured window.
const PACKETS_PER_TICK: u32 = 16;

fn churn_workload(entries: u32, ticks: u32) -> Workload {
    Workload::TableChurn {
        seed: DEFAULT_SEED,
        ticks,
        packets_per_tick: PACKETS_PER_TICK,
        entries,
        churn_every: CHURN_EVERY,
        churn_size: CHURN_SIZE,
    }
}

fn main() {
    let cli = Cli::new("churn", "internet-scale table-churn smoke with a bounded-arena gate")
        .flag("--json", "print one ScenarioMetrics JSON line per kind instead of the table")
        .opt("--kinds", "LIST", "comma-separated table kinds to smoke (default patricia,trie)")
        .opt("--ticks", "N", "measured ticks for the long run (default 200)")
        .positional("entries", "BGP-shaped routing-table size", Some("100000"));
    let args = cli.parse_or_exit();
    let json = args.flag("--json");
    let entries: u32 = args.pos_parsed("entries").unwrap_or_else(|e| cli.fail(&e));
    let ticks: u32 = args.opt_parsed("--ticks").unwrap_or_else(|e| cli.fail(&e)).unwrap_or(200);
    let kinds: Vec<TableKind> = args
        .opt("--kinds")
        .unwrap_or("patricia,trie")
        .split(',')
        .map(|name| parse_table_kind(name.trim()).unwrap_or_else(|e| cli.fail(&e)))
        .collect();

    eprintln!(
        "churn smoke: {entries} BGP prefixes, {CHURN_SIZE} routes churned every \
         {CHURN_EVERY} ticks, seed {DEFAULT_SEED:#x}"
    );

    let mut results: Vec<ScenarioMetrics> = Vec::new();
    for kind in kinds {
        let config = ScenarioConfig::new(kind);
        // Half the ticks ⇒ half the churn cycles.  The footprint
        // high-water mark must not move: the free list recycles every
        // slot a withdrawal releases, so extra cycles cost no memory.
        let short = run_scenario(&churn_workload(entries, ticks / 2), &config);
        let long = run_scenario(&churn_workload(entries, ticks), &config);
        assert!(long.table_memory_words > 0, "{kind}: footprint metric never sampled");
        if short.table_memory_words != long.table_memory_words {
            eprintln!(
                "churn smoke FAILED: {kind} arena grew with churn cycles \
                 ({} words after {} ticks, {} words after {ticks} ticks)",
                short.table_memory_words,
                ticks / 2,
                long.table_memory_words,
            );
            std::process::exit(1);
        }
        eprintln!(
            "{kind}: arena bounded at {} words across {} churn events ({} forwarded)",
            long.table_memory_words,
            u64::from(ticks / CHURN_EVERY),
            long.forwarded,
        );
        results.push(long);
    }

    if json {
        for m in &results {
            println!("{}", m.to_json());
        }
        return;
    }
    println!(
        "{:<14} {:>12} {:>9} {:>9} {:>8} {:>8}",
        "table", "mem(words)", "offered", "forwarded", "dropped", "updates"
    );
    for m in &results {
        println!(
            "{:<14} {:>12} {:>9} {:>9} {:>8} {:>8}",
            m.kind.to_string(),
            m.table_memory_words,
            m.offered,
            m.forwarded,
            m.dropped(),
            m.table_updates,
        );
    }
}
