//! Ablation of the sequential-scan microcode's design choices (DESIGN.md
//! §5): the lane-unroll factor and the screening-word selection.
//!
//! * **unroll** — how many entries one scan block screens with distinct
//!   virtual Matcher/Counter instances.  More lanes help exactly when the
//!   machine has the buses/FUs to overlap them.
//! * **screen word** — which 32-bit address word the screening pass
//!   compares.  Real tables cluster under a shared global prefix, so
//!   screening on word 0 false-positives on every entry and degrades the
//!   scan to full 128-bit verification.
//!
//! ```text
//! cargo run -p taco-bench --release --bin ablation
//! ```
//!
//! Every cell is an independent cycle-accurate run, so each grid is
//! measured in parallel on the `taco-core` worker pool (`TACO_THREADS`
//! overrides the worker count); cells print in grid order regardless of
//! completion order.

use std::time::Instant;

use taco_bench::cli::Cli;
use taco_core::{benchmark_routes, pool};
use taco_ipv6::{Datagram, NextHeader};
use taco_isa::MachineConfig;
use taco_router::microcode::{choose_screen_word, sequential_program, MicrocodeOptions};
use taco_router::{layout, TrafficGen};
use taco_routing::{PortId, Route, SequentialTable};

const ENTRIES: usize = 64;

/// A table whose entries all share their first 32 address bits — the shape
/// of a real provider table, and the worst case for word-0 screening.
fn clustered_routes() -> Vec<Route> {
    (0..ENTRIES as u16)
        .map(|i| {
            Route::new(
                format!("2001:db8:{i:x}::/48").parse().expect("valid"),
                "fe80::1".parse().expect("valid"),
                PortId(i % 4),
                1,
            )
        })
        .collect()
}

fn measure(config: &MachineConfig, routes: &[Route], opts: &MicrocodeOptions) -> u64 {
    // Build the router by hand so the ablation controls the exact options
    // (CycleRouter::sequential would re-tune the screen word).
    let table = SequentialTable::from_routes(routes.iter().copied());
    let mut image = layout::serialize_sequential(&table);
    taco_router::microcode::pad_sequential_image(&mut image, opts.unroll);
    let padded = image.len() / layout::SEQ_ENTRY_WORDS as usize;
    let seq = sequential_program(padded, opts);

    let mut program = taco_isa::schedule(&seq, config);
    program.resolve_labels().expect("labels defined");
    let mut cpu = taco_sim::Processor::new(config.clone(), program).expect("valid program");
    cpu.memory_mut().load(layout::TABLE_BASE, &image).expect("image fits");

    let mut gen = TrafficGen::new(0x0DA7A, 4);
    let deepest = *table.entries().last().expect("non-empty");
    for _ in 0..8 {
        let d = Datagram::builder(
            "2001:db8:ffff::1".parse().expect("valid"),
            gen.addr_in(&deepest.prefix()),
        )
        .hop_limit(64)
        .payload(NextHeader::Udp, vec![0u8; 32])
        .build();
        let words = layout::datagram_to_words(&d);
        let addr = layout::dgram_slot(0);
        cpu.memory_mut().load(addr, &words).expect("fits");
        cpu.push_input(addr, 0);
    }
    cpu.run(50_000_000).expect("halts").cycles / 8
}

/// Measures a grid of `(config, routes, opts)` cells in parallel, in grid
/// order, with one stderr progress line per grid.
fn measure_grid(label: &str, cells: &[(MachineConfig, &[Route], MicrocodeOptions)]) -> Vec<u64> {
    let threads = pool::default_threads();
    let started = Instant::now();
    let results = pool::ordered_map(cells, threads, |_, (config, routes, opts)| {
        measure(config, routes, opts)
    });
    eprintln!(
        "{label}: {} cells on {threads} worker thread(s), {:.1} ms",
        cells.len(),
        started.elapsed().as_secs_f64() * 1e3
    );
    results
}

fn main() {
    Cli::new("ablation", "sequential-scan microcode tunables: unroll factor, screening word")
        .parse_or_exit();
    let diverse = benchmark_routes(ENTRIES);
    let clustered = clustered_routes();
    let best = |routes: &[Route]| {
        choose_screen_word(&SequentialTable::from_routes(routes.iter().copied()))
    };
    println!("sequential-scan ablation, {ENTRIES} entries, worst-case traffic");
    println!();

    println!("— unroll factor (diverse table, screen word {}) —", best(&diverse));
    println!("{:<22} {:>8} {:>8} {:>8}", r"config \ unroll", 1, 2, 3);
    let configs = [
        MachineConfig::one_bus_one_fu(),
        MachineConfig::three_bus_one_fu(),
        MachineConfig::three_bus_three_fu(),
    ];
    let unroll_cells: Vec<(MachineConfig, &[Route], MicrocodeOptions)> = configs
        .iter()
        .flat_map(|config| {
            (1..=3u8).map(|unroll| {
                let opts =
                    MicrocodeOptions { unroll, screen_word: best(&diverse), halt_when_idle: true };
                (config.clone(), diverse.as_slice(), opts)
            })
        })
        .collect();
    for (row, chunk) in measure_grid("unroll grid", &unroll_cells).chunks(3).enumerate() {
        print!("{:<22}", configs[row].label());
        for cycles in chunk {
            print!(" {cycles:>8}");
        }
        println!();
    }

    println!();
    println!("— screening word (unroll 3, 3BUS/1FU) —");
    println!("{:<30} {:>8} {:>8} {:>8} {:>8}  {:>6}", r"table \ word", 0, 1, 2, 3, "auto");
    let tables: [(&str, &[Route]); 2] =
        [("diverse (random /16-/64)", &diverse), ("clustered (2001:db8::/32)", &clustered)];
    let screen_cells: Vec<(MachineConfig, &[Route], MicrocodeOptions)> = tables
        .iter()
        .flat_map(|&(_, routes)| {
            (0..4u8).map(move |word| {
                let opts = MicrocodeOptions { unroll: 3, screen_word: word, halt_when_idle: true };
                (MachineConfig::three_bus_one_fu(), routes, opts)
            })
        })
        .collect();
    for (row, chunk) in measure_grid("screen-word grid", &screen_cells).chunks(4).enumerate() {
        let (name, routes) = tables[row];
        print!("{name:<30}");
        for cycles in chunk {
            print!(" {cycles:>8}");
        }
        println!("  {:>6}", best(routes));
    }
    println!();
    println!("on a clustered table every prefix shares address word 0, so screening");
    println!("on it false-positives on every entry and the scan pays the full 128-bit");
    println!("verify; the auto-chooser picks the most discriminating word per table.");

    println!();
    println!("— memory ports (diverse table, unroll 3) —");
    println!("(probing EXPERIMENTS.md deviation D1: with >1 memory word per cycle,");
    println!(" does FU replication finally pay, as the paper's numbers imply?)");
    println!("{:<26} {:>8} {:>8} {:>8}", r"config \ mmu ports", 1, 2, 3);
    let bases = [
        ("3BUS/1FU", MachineConfig::three_bus_one_fu()),
        ("3bus/3CNT,3CMP,3M", MachineConfig::three_bus_three_fu()),
        (
            "6bus/3CNT,3CMP,3M",
            MachineConfig::new(6)
                .with_fu_count(taco_isa::FuKind::Counter, 3)
                .with_fu_count(taco_isa::FuKind::Comparator, 3)
                .with_fu_count(taco_isa::FuKind::Matcher, 3),
        ),
    ];
    let port_cells: Vec<(MachineConfig, &[Route], MicrocodeOptions)> = bases
        .iter()
        .flat_map(|(_, base)| {
            (1..=3u8).map(|ports| {
                let config = base.clone().with_fu_count(taco_isa::FuKind::Mmu, ports);
                let opts = MicrocodeOptions {
                    unroll: 3,
                    screen_word: best(&diverse),
                    halt_when_idle: true,
                };
                (config, diverse.as_slice(), opts)
            })
        })
        .collect();
    for (row, chunk) in measure_grid("memory-port grid", &port_cells).chunks(3).enumerate() {
        print!("{:<26}", bases[row].0);
        for cycles in chunk {
            print!(" {cycles:>8}");
        }
        println!();
    }
}
