//! `taco-cli` — the client/server front end for the `taco-served` batch
//! evaluation daemon.
//!
//! ```text
//! cargo run -p taco-bench --release --bin taco-cli -- serve [--addr A] \
//!     [--max-pending N] [--snapshot PATH] [--threads N]
//! cargo run -p taco-bench --release --bin taco-cli -- submit --addr A \
//!     [--table1 | --sweep | --trace FILE] [--kind NAME] [--entries N] \
//!     [--shards A,B,C]
//! cargo run -p taco-bench --release --bin taco-cli -- status --addr A
//! cargo run -p taco-bench --release --bin taco-cli -- shutdown --addr A
//! ```
//!
//! `serve` runs the daemon in the foreground and prints the bound address
//! on stdout (ask for port 0 to get an ephemeral one).  `submit` sends
//! jobs: `--table1` submits the twelve extended Table 1 cells (the
//! paper's nine plus the PATRICIA column) as single evaluations,
//! `--sweep` submits the default design-space grid as one
//! batch job (per-point progress streams back while it runs), and with
//! neither flag one raw `v1` request line is read from stdin and sent
//! verbatim.  `--trace FILE` submits one evaluation that replays the
//! binary flow trace at FILE (shipped inline over the wire; `--kind`
//! picks the table organisation, default `cam`).  `--sweep --shards A,B,C` instead splits the grid across
//! several daemons through the v2 sharding coordinator and prints the
//! merged result (identical bytes to an unsharded sweep result, minus
//! the progress lines).  All responses are printed to stdout exactly as
//! received — one JSON line each, byte-stable, pipeable into `jq` or a
//! golden diff.  A structured `busy` rejection is retried with bounded
//! exponential backoff before it is surfaced.  The exit code is 0 only
//! if the daemon answered without a protocol error.

use std::io::{BufRead, Write};
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

use taco_bench::cli::{Cli, Parsed};
use taco_core::api::{parse_table_kind, ApiRequest, ApiResponse, ConfigSpec, EvalSpec, TraceRef};
use taco_core::{ArchConfig, Constraints, FlowTrace, LineRate, SweepSpec};
use taco_served::{open_request, sharded_sweep, Server, ServerConfig};

fn print_overview() {
    println!("taco-cli — client/server front end for the taco-served evaluation daemon");
    println!();
    println!("usage: taco-cli <serve|submit|status|shutdown> [options]");
    println!();
    println!("subcommands:");
    println!("  serve     run the daemon in the foreground (prints the bound address)");
    println!("  submit    send eval/sweep jobs to a running daemon");
    println!("  status    print the daemon's queue and cache statistics");
    println!("  shutdown  drain the daemon, persist its cache and stop it");
    println!();
    println!("run `taco-cli <subcommand> --help` for the subcommand's options.");
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_overview();
        exit(2);
    }
    let subcommand = args.remove(0);
    match subcommand.as_str() {
        "--help" | "-h" => print_overview(),
        "serve" => serve(args),
        "submit" => submit(args),
        "status" => control(args, "status", ApiRequest::Status),
        "shutdown" => control(args, "shutdown", ApiRequest::Shutdown),
        other => {
            eprintln!("taco-cli: unknown subcommand {other:?}");
            eprintln!();
            print_overview();
            exit(2);
        }
    }
}

fn serve(rest: Vec<String>) {
    let cli = Cli::new("taco-cli serve", "run the taco-served evaluation daemon")
        .opt("--addr", "ADDR", "address to listen on; port 0 picks an ephemeral port")
        .opt("--max-pending", "N", "job slots before submissions get a structured busy error")
        .opt("--snapshot", "PATH", "cache snapshot to load on boot and persist on shutdown")
        .opt("--threads", "N", "sweep worker threads (0 = one per core)");
    let args = cli.parse_args_or_exit(rest);
    let mut config = ServerConfig::default();
    if let Some(addr) = args.opt("--addr") {
        config.addr = addr.to_owned();
    }
    if let Some(n) = args.opt_parsed("--max-pending").unwrap_or_else(|e| cli.fail(&e)) {
        config.max_pending = n;
    }
    if let Some(path) = args.opt("--snapshot") {
        config.snapshot = Some(PathBuf::from(path));
    }
    if let Some(n) = args.opt_parsed("--threads").unwrap_or_else(|e| cli.fail(&e)) {
        config.threads = n;
    }
    let server = Server::bind(config).unwrap_or_else(|e| {
        eprintln!("taco-cli: cannot bind the daemon: {e}");
        exit(1);
    });
    // The address line is the serve contract: scripts read it to learn
    // the ephemeral port, so it must be flushed before the first accept.
    println!("taco-served listening on {}", server.local_addr());
    std::io::stdout().flush().ok();
    if let Err(e) = server.run() {
        eprintln!("taco-cli: server failed: {e}");
        exit(1);
    }
}

/// The daemon address every client subcommand needs.
fn required_addr(cli: &Cli, args: &Parsed) -> String {
    match args.opt("--addr") {
        Some(addr) => addr.to_owned(),
        None => cli.fail("--addr is required (the address `serve` printed)"),
    }
}

/// Sends one request line, echoes every response line to stdout, and
/// returns the last line (the final response of a streamed job).
fn exchange(addr: &str, request_line: &str) -> String {
    let reader = open_request(addr, request_line).unwrap_or_else(|e| {
        eprintln!("taco-cli: cannot reach the daemon at {addr}: {e}");
        exit(1);
    });
    let mut last = String::new();
    for line in reader.lines() {
        match line {
            Ok(line) => {
                println!("{line}");
                last = line;
            }
            Err(e) => {
                eprintln!("taco-cli: connection lost mid-response: {e}");
                exit(1);
            }
        }
    }
    if last.is_empty() {
        eprintln!("taco-cli: the daemon closed the connection without answering");
        exit(1);
    }
    last
}

/// How many times `submit` retries a `busy` rejection, and the backoff
/// schedule's bounds: 50 ms doubling per attempt, capped at 800 ms.
const BUSY_RETRIES: u32 = 5;
const BUSY_BASE_DELAY: Duration = Duration::from_millis(50);
const BUSY_MAX_DELAY: Duration = Duration::from_millis(800);

/// [`exchange`], but a structured `busy` answer — the daemon's explicit
/// "try again later" ([`taco_core::ApiErrorCode::is_retryable`]) — is retried with
/// bounded exponential backoff instead of surfacing immediately.  The
/// transient rejections go to stderr; stdout only carries the attempt
/// that produced a real response stream.
fn exchange_retrying(addr: &str, request_line: &str) -> String {
    let mut delay = BUSY_BASE_DELAY;
    let mut attempts = 0u32;
    loop {
        let reader = open_request(addr, request_line).unwrap_or_else(|e| {
            eprintln!("taco-cli: cannot reach the daemon at {addr}: {e}");
            exit(1);
        });
        let mut last = String::new();
        let mut retry = false;
        for (i, line) in reader.lines().enumerate() {
            let line = line.unwrap_or_else(|e| {
                eprintln!("taco-cli: connection lost mid-response: {e}");
                exit(1);
            });
            // A busy rejection is always the first (and only) line.
            if i == 0 && attempts < BUSY_RETRIES {
                if let Ok(ApiResponse::Error(e)) = ApiResponse::from_json(&line) {
                    if e.code.is_retryable() {
                        attempts += 1;
                        eprintln!(
                            "taco-cli: daemon is busy ({}); retry {attempts}/{BUSY_RETRIES} \
                             in {} ms",
                            e.message,
                            delay.as_millis()
                        );
                        retry = true;
                        break;
                    }
                }
            }
            println!("{line}");
            last = line;
        }
        if retry {
            std::thread::sleep(delay);
            delay = (delay * 2).min(BUSY_MAX_DELAY);
            continue;
        }
        if last.is_empty() {
            eprintln!("taco-cli: the daemon closed the connection without answering");
            exit(1);
        }
        return last;
    }
}

/// Exits 1 if the final response line is a protocol error (so scripts can
/// branch on the exit code instead of parsing JSON).
fn check(final_line: &str) {
    if let Ok(ApiResponse::Error(e)) = ApiResponse::from_json(final_line) {
        eprintln!("taco-cli: daemon answered with an error: {e}");
        exit(1);
    }
}

fn control(rest: Vec<String>, name: &'static str, request: ApiRequest) {
    let about = match name {
        "status" => "print the daemon's queue and cache statistics",
        _ => "drain the daemon, persist its cache and stop it",
    };
    let cli = Cli::new(name, about).opt("--addr", "ADDR", "daemon address (required)");
    let args = cli.parse_args_or_exit(rest);
    let addr = required_addr(&cli, &args);
    check(&exchange(&addr, &request.to_json()));
}

/// Resolves every comma-separated address in `--shards`.
fn parse_shards(cli: &Cli, raw: &str) -> Vec<SocketAddr> {
    raw.split(',')
        .map(str::trim)
        .map(|part| {
            part.to_socket_addrs()
                .ok()
                .and_then(|mut addrs| addrs.next())
                .unwrap_or_else(|| cli.fail(&format!("--shards: cannot resolve {part:?}")))
        })
        .collect()
}

fn submit(rest: Vec<String>) {
    let cli = Cli::new("taco-cli submit", "submit evaluation jobs to a running daemon")
        .flag("--table1", "submit the twelve extended Table 1 cells as eval requests")
        .flag("--sweep", "submit the default design-space grid as one batch job")
        .opt("--addr", "ADDR", "daemon address (required unless --shards is given)")
        .opt("--entries", "N", "override the routing-table size for --table1/--sweep")
        .opt("--shards", "A,B,C", "split --sweep across these worker daemons (v2 sharding)")
        .opt("--trace", "FILE", "submit one eval replaying the binary flow trace at FILE")
        .opt("--kind", "NAME", "table organisation for --trace (default cam)");
    let args = cli.parse_args_or_exit(rest);
    let entries: Option<usize> = args.opt_parsed("--entries").unwrap_or_else(|e| cli.fail(&e));
    let exclusive = [args.flag("--table1"), args.flag("--sweep"), args.opt("--trace").is_some()];
    if exclusive.iter().filter(|&&given| given).count() > 1 {
        cli.fail("--table1, --sweep and --trace are mutually exclusive");
    }
    if let Some(raw) = args.opt("--shards") {
        if !args.flag("--sweep") {
            cli.fail("--shards only applies to --sweep");
        }
        let workers = parse_shards(&cli, raw);
        let mut spec = SweepSpec::default();
        if let Some(n) = entries {
            spec.entries = n;
        }
        let constraints = Constraints::default();
        let exploration = sharded_sweep(&workers, &spec, LineRate::TEN_GBE, &constraints)
            .unwrap_or_else(|e| {
                eprintln!("taco-cli: sharded sweep failed: {e}");
                exit(1);
            });
        let merged =
            ApiResponse::SweepResult { admitted: exploration.admitted, reports: exploration.all };
        println!("{}", merged.to_json());
        return;
    }
    let addr = required_addr(&cli, &args);
    if let Some(file) = args.opt("--trace") {
        // The trace is read and validated locally, then shipped inline so
        // the daemon needs no access to this machine's filesystem.
        let trace = FlowTrace::read(std::path::Path::new(file)).unwrap_or_else(|e| {
            eprintln!("taco-cli: cannot read trace {file:?}: {e}");
            exit(1);
        });
        let kind =
            parse_table_kind(args.opt("--kind").unwrap_or("cam")).unwrap_or_else(|e| cli.fail(&e));
        let mut eval = EvalSpec::new(ConfigSpec::new(kind, 3, 1));
        if let Some(n) = entries {
            eval.entries = n;
        }
        eval.trace = Some(TraceRef::inline(&trace));
        check(&exchange_retrying(&addr, &ApiRequest::Eval(eval).to_json()));
    } else if args.flag("--table1") {
        for config in ArchConfig::table1_cells() {
            let spec =
                ConfigSpec::from_config(&config).expect("every Table 1 cell is wire-expressible");
            let mut eval = EvalSpec::new(spec);
            if let Some(n) = entries {
                eval.entries = n;
            }
            check(&exchange_retrying(&addr, &ApiRequest::Eval(eval).to_json()));
        }
    } else if args.flag("--sweep") {
        let mut spec = SweepSpec::default();
        if let Some(n) = entries {
            spec.entries = n;
        }
        let request = ApiRequest::Sweep {
            spec,
            rate: LineRate::TEN_GBE,
            constraints: Constraints::default(),
            shard: None,
        };
        check(&exchange_retrying(&addr, &request.to_json()));
    } else {
        let mut line = String::new();
        if std::io::stdin().read_line(&mut line).unwrap_or(0) == 0 {
            cli.fail("no job given: pass --table1 or --sweep, or pipe a request line to stdin");
        }
        check(&exchange_retrying(&addr, line.trim_end()));
    }
}
