//! The automated design-space exploration the paper lists as future work:
//! sweep buses × FU replication × routing-table organisation, evaluate each
//! instance, filter by power/area constraints and print the ranking.
//!
//! ```text
//! cargo run -p taco-bench --release --bin dse \
//!     [max_power_w] [max_area_mm2] [--stats] [--scenario NAME] [--max-drops N] \
//!     [--faults NAME] [--max-unrecovered N] [--trace FILE] [--trace-best PATH]
//! ```
//!
//! The sweep fans out across all cores (`TACO_THREADS` overrides) through
//! the process-global evaluation cache, with per-point progress on stderr;
//! `--stats` appends each point's raw simulator counters as JSON.
//! `--scenario` replays a named behavioural workload (`steady-forward`,
//! `burst-overload`, `ripng-convergence`, `table-churn`, `mixed-plane`,
//! `trace-replay`) on every grid point, and `--max-drops` disqualifies
//! instances whose scenario dropped more than N datagrams.  `--trace FILE`
//! instead replays the binary flow trace at FILE verbatim on every grid
//! point (one in-memory copy shared by all workers).  `--faults` overlays a named deterministic fault
//! plan (`storm`, `malformed`, `corruption`, `flaps`, `stalls`) on the
//! scenario — defaulting the workload to `steady-forward` if `--scenario`
//! was not given — and `--max-unrecovered` disqualifies instances that
//! left more than N injected faults unrecovered.  `--trace-best PATH`
//! re-runs the winning design point's measurement under a Chrome tracer
//! and writes the timeline JSON to PATH (load it in Perfetto or
//! `chrome://tracing`).
//!
//! `--cores`, `--topology` and `--coherence` take comma-separated lists
//! and extend the sweep with multicore axes (e.g. `--cores 4 --topology
//! mesh --coherence mesi`): each grid point is then also evaluated as an
//! N-core system with private coherent table caches over the chosen
//! interconnect.  A core count of 1 collapses the interconnect axes to
//! the single-core default, exactly as the wire `SweepSpec` does.

use taco_bench::cli::Cli;
use taco_core::api::{parse_fault_plan_name, parse_workload_name};
use taco_core::{
    explore_with, pool, table1, Constraints, EvalCache, ExploreOptions, LineRate, StderrProgress,
    SweepSpec, Workload,
};
use taco_isa::{CoherenceProtocol, Topology, MAX_CORES};

/// Parses a comma-separated list with `parse`, failing the CLI on the
/// first element `parse` rejects.
fn parse_list<T>(cli: &Cli, raw: &str, parse: impl Fn(&str) -> Result<T, String>) -> Vec<T> {
    raw.split(',').map(|item| parse(item.trim()).unwrap_or_else(|e| cli.fail(&e))).collect()
}

fn main() {
    let cli = Cli::new("dse", "automated design-space exploration with constraint filtering")
        .flag("--stats", "append each point's raw simulator counters as JSON on stderr")
        .opt("--scenario", "NAME", "replay the named workload on every grid point")
        .opt("--max-drops", "N", "disqualify instances dropping more than N datagrams")
        .opt("--faults", "NAME", "overlay the named deterministic fault plan")
        .opt("--max-unrecovered", "N", "disqualify instances leaving more than N faults open")
        .opt("--trace", "FILE", "replay the binary flow trace at FILE on every grid point")
        .opt("--trace-best", "PATH", "write a Chrome trace of the winning point to PATH")
        .opt("--cores", "LIST", "core counts to sweep, comma-separated (default 1)")
        .opt("--topology", "LIST", "interconnects to sweep: shared-bus, mesh (default shared-bus)")
        .opt("--coherence", "LIST", "coherence protocols to sweep: msi, mesi (default mesi)")
        .positional("max_power_w", "power constraint, watts", Some("2.0"))
        .positional("max_area_mm2", "area constraint, mm^2", Some("50.0"));
    let args = cli.parse_or_exit();
    let stats = args.flag("--stats");
    // Names resolve through the same `taco_core::api` parsers the wire
    // protocol uses, so CLI and daemon reject exactly the same inputs
    // (and list the same alternatives).
    let workload = args
        .opt("--scenario")
        .map(|name| parse_workload_name(name).unwrap_or_else(|e| cli.fail(&e)));
    let max_scenario_drops: Option<u64> =
        args.opt_parsed("--max-drops").unwrap_or_else(|e| cli.fail(&e));
    let faults = args
        .opt("--faults")
        .map(|name| parse_fault_plan_name(name).unwrap_or_else(|e| cli.fail(&e)));
    let max_unrecovered_faults: Option<u64> =
        args.opt_parsed("--max-unrecovered").unwrap_or_else(|e| cli.fail(&e));
    let trace_best = args.opt("--trace-best").map(str::to_owned);
    let max_power_w: f64 = args.pos_parsed("max_power_w").unwrap_or_else(|e| cli.fail(&e));
    let max_area_mm2: f64 = args.pos_parsed("max_area_mm2").unwrap_or_else(|e| cli.fail(&e));
    let constraints =
        Constraints { max_power_w, max_area_mm2, max_scenario_drops, max_unrecovered_faults };
    let trace = args.opt("--trace").map(|file| {
        if args.opt("--scenario").is_some() {
            cli.fail("--trace and --scenario are mutually exclusive (the trace IS the scenario)");
        }
        let trace = taco_core::FlowTrace::read(std::path::Path::new(file)).unwrap_or_else(|e| {
            eprintln!("dse: cannot read trace {file:?}: {e}");
            std::process::exit(1);
        });
        std::sync::Arc::new(trace)
    });
    // A fault plan needs a scenario to act on: default the workload so
    // `--faults storm` alone does what it says.
    let workload = match (&trace, &faults, workload) {
        (Some(trace), _, _) => Some(trace.descriptor()),
        (None, Some(_), None) => {
            eprintln!("--faults without --scenario: defaulting to the steady-forward workload");
            Some(Workload::steady_forward())
        }
        (None, _, w) => w,
    };
    // The multicore axes resolve through the same name tables the wire
    // protocol uses, so `dse` and the daemon reject the same spellings.
    let cores = args.opt("--cores").map_or_else(
        || vec![1],
        |raw| {
            parse_list(&cli, raw, |item| {
                item.parse::<u8>()
                    .ok()
                    .filter(|&n| (1..=MAX_CORES).contains(&n))
                    .ok_or_else(|| format!("--cores entries must be 1..={MAX_CORES}, got {item:?}"))
            })
        },
    );
    let topologies = args.opt("--topology").map_or_else(
        || vec![Topology::SharedBus],
        |raw| {
            parse_list(&cli, raw, |item| {
                Topology::by_name(item).ok_or_else(|| {
                    let names: Vec<&str> = Topology::ALL.iter().map(|t| t.name()).collect();
                    format!("unknown topology {item:?}; expected one of: {}", names.join(", "))
                })
            })
        },
    );
    let protocols = args.opt("--coherence").map_or_else(
        || vec![CoherenceProtocol::Mesi],
        |raw| {
            parse_list(&cli, raw, |item| {
                CoherenceProtocol::by_name(item).ok_or_else(|| {
                    let names: Vec<&str> =
                        CoherenceProtocol::ALL.iter().map(|p| p.name()).collect();
                    format!(
                        "unknown coherence protocol {item:?}; expected one of: {}",
                        names.join(", ")
                    )
                })
            })
        },
    );
    let spec =
        SweepSpec { workload, faults, trace, cores, topologies, protocols, ..SweepSpec::default() };

    println!(
        "design-space exploration: {} buses x {} replications x {} table kinds, {} entries",
        spec.buses.len(),
        spec.replication.len(),
        spec.kinds.len(),
        spec.entries
    );
    if spec.cores != [1] {
        let names = |items: Vec<String>| items.join(", ");
        println!(
            "multicore axes: cores [{}] x topologies [{}] x protocols [{}]",
            names(spec.cores.iter().map(u8::to_string).collect()),
            names(spec.topologies.iter().map(|t| t.name().to_owned()).collect()),
            names(spec.protocols.iter().map(|p| p.name().to_owned()).collect()),
        );
    }
    println!(
        "constraints: power <= {max_power_w} W, area <= {max_area_mm2} mm2, target {}",
        LineRate::TEN_GBE
    );
    if let Some(w) = &spec.workload {
        match constraints.max_scenario_drops {
            Some(n) => println!("scenario: {} (seed {:#x}), <= {n} drops", w.name(), w.seed()),
            None => println!("scenario: {} (seed {:#x})", w.name(), w.seed()),
        }
    }
    if let Some(p) = &spec.faults {
        match constraints.max_unrecovered_faults {
            Some(n) => {
                println!("faults: {} (seed {:#x}), <= {n} unrecovered", p.name(), p.seed)
            }
            None => println!("faults: {} (seed {:#x})", p.name(), p.seed),
        }
    }
    println!();

    let threads = pool::default_threads();
    eprintln!("sweeping on {threads} worker thread(s) (set {} to override)", pool::THREADS_ENV);
    let observer = if stats { StderrProgress::verbose() } else { StderrProgress::new() };
    let cache = EvalCache::global();
    let ex = explore_with(
        &spec,
        LineRate::TEN_GBE,
        &constraints,
        &ExploreOptions { threads, cache: Some(cache), observer: &observer },
    );
    eprintln!(
        "evaluation cache: {} hits, {} misses, {} points stored",
        cache.hits(),
        cache.misses(),
        cache.len()
    );

    println!("all {} evaluated instances:", ex.all.len());
    print!("{}", table1::render(&ex.all));
    println!();

    if ex.admitted.is_empty() {
        println!("no instance satisfies the constraints");
        return;
    }
    println!("{} instances satisfy the constraints; by ascending power:", ex.admitted.len());
    for (rank, &i) in ex.admitted.iter().enumerate().take(10) {
        let r = &ex.all[i];
        // Admission implies physical feasibility today, but a ranking
        // printer must not be able to panic on a stale index either way.
        let Some(e) = r.estimate.feasible() else {
            eprintln!("  #{:<2} {:<38} (infeasible point, skipped)", rank + 1, r.config.label());
            continue;
        };
        let drops = match &r.scenario {
            Some(s) => format!(" {:>8} drops", s.dropped()),
            None => String::new(),
        };
        println!(
            "  #{:<2} {:<38} {:>10} {:>8.2} mm2 {:>8.3} W{drops}",
            rank + 1,
            r.config.label(),
            table1::format_frequency(r.required_frequency_hz),
            e.area_mm2,
            e.power_w
        );
    }
    let best = ex.best().expect("non-empty admitted set");
    println!();
    println!("suggested configuration: {}", best.config.label());

    if let Some(path) = &trace_best {
        // Re-run the winner's measurement under a Chrome tracer.  Going
        // through `trace_request` (not the cache) is deliberate: a cache
        // hit has no simulation to observe.
        let request = taco_core::EvalRequest::new(best.config.clone())
            .rate(best.line_rate)
            .entries(best.table_entries);
        let mut chrome = taco_sim::ChromeTracer::new(best.config.machine.buses());
        match taco_core::trace_request(&request, &mut chrome) {
            Ok(stats) => match std::fs::write(path, chrome.finish(stats.cycles)) {
                Ok(()) => println!("chrome trace of {} written to {path}", best.config.label()),
                Err(e) => eprintln!("could not write {path}: {e}"),
            },
            Err(e) => eprintln!("could not trace best point: {e}"),
        }
    }

    // The replication heuristic of the paper's future-work tool: where does
    // the winning configuration's microcode put its trigger pressure?
    let opts = taco_router::microcode::MicrocodeOptions::default();
    let seq = match best.config.table {
        taco_routing::TableKind::Sequential => {
            taco_router::microcode::sequential_program(spec.entries, &opts)
        }
        taco_routing::TableKind::BalancedTree => taco_router::microcode::tree_program(&opts),
        taco_routing::TableKind::Trie => taco_router::microcode::trie_program(&opts),
        taco_routing::TableKind::Patricia => taco_router::microcode::patricia_program(&opts),
        taco_routing::TableKind::Cam => taco_router::microcode::cam_program(&opts),
    };
    let program = taco_isa::schedule(&seq, &best.config.machine);
    let mut pressure: Vec<(taco_isa::FuKind, usize)> = program.fu_pressure().into_iter().collect();
    pressure.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    let summary: Vec<String> = pressure.iter().take(4).map(|(k, n)| format!("{k} x{n}")).collect();
    println!("static FU trigger pressure (replication candidates first): {}", summary.join(", "));
}
