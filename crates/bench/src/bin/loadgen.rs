//! `loadgen` — concurrent-client load generator for the `taco-served`
//! daemon.
//!
//! The daemon's event-loop rewrite claims one thing above all: a
//! persistent v2 session with in-flight pipelining sustains far more
//! evaluations per second than the v1 one-request-per-connection
//! dialect, because the per-request accept/handshake/teardown work
//! disappears.  This binary measures that claim on loopback:
//!
//! 1. an in-process daemon is started and one evaluation point is warmed
//!    into its cache, so every measured request takes the inline
//!    cache-hit fast path — the numbers isolate *serving* cost, not
//!    simulation cost;
//! 2. for each client count, N threads hammer the daemon twice — once
//!    opening a fresh connection per request (the v1 baseline), once
//!    over a single persistent session with a window of in-flight
//!    requests each — recording per-request latency into per-thread
//!    [`LatencyHistogram`]s (microsecond ticks) that merge into the
//!    percentile report;
//! 3. a cold default sweep is then timed through the sharding
//!    coordinator at each requested worker count.
//!
//! `--json PATH` writes the `BENCH_served.json` artefact that
//! `scripts/verify.sh` regenerates and EXPERIMENTS.md quotes.
//!
//! ```text
//! cargo run -p taco-bench --release --bin loadgen -- \
//!     [--clients LIST] [--requests N] [--window N] [--shards LIST] \
//!     [--json PATH]
//! ```

use std::collections::HashMap;
use std::io::Write;
use std::net::SocketAddr;
use std::process::exit;
use std::thread;
use std::time::Instant;

use taco_bench::cli::Cli;
use taco_core::api::{ApiRequest, ApiResponse, ConfigSpec, EvalSpec, WireResponse};
use taco_core::{Constraints, LineRate, RoutingTableKind, SweepSpec};
use taco_served::{request_lines, sharded_sweep, Server, ServerConfig, Session};
use taco_workload::LatencyHistogram;

/// The measured request: a single-bus CAM evaluation, tiny table.  It is
/// warmed once so every timed request is an inline cache hit.
fn probe() -> ApiRequest {
    let mut spec = EvalSpec::new(ConfigSpec::new(RoutingTableKind::Cam, 1, 1));
    spec.entries = 8;
    ApiRequest::Eval(spec)
}

fn start_server() -> (SocketAddr, thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServerConfig::default()).unwrap_or_else(|e| {
        eprintln!("loadgen: cannot bind a loopback daemon: {e}");
        exit(1);
    });
    let addr = server.local_addr();
    (addr, thread::spawn(move || server.run()))
}

fn shut_down(addr: SocketAddr) {
    let _ = request_lines(addr, &ApiRequest::Shutdown.to_json());
}

fn expect_eval(response: &ApiResponse) {
    if !matches!(response, ApiResponse::EvalResult(_)) {
        eprintln!("loadgen: daemon answered {response:?} instead of an eval_result");
        exit(1);
    }
}

/// The daemon serialises canonically, so a v2 response's id sits at a
/// fixed prefix.  Parsing just the envelope head keeps the measured hot
/// loop cheap on the client side — on small machines a full
/// [`ApiResponse`] parse per response would contend with the daemon for
/// CPU and the benchmark would measure the client, not the server.
fn fast_id(line: &str) -> Option<u64> {
    let rest = line.strip_prefix("{\"api_version\":\"v2\",\"id\":")?;
    rest[..rest.find(',')?].parse().ok()
}

/// Cheap response validation for the measured loops: the first response
/// each client sees is parsed strictly; the rest only have their kind
/// checked by substring.
fn expect_eval_line(line: &str, strict: bool) {
    if strict {
        expect_eval(&WireResponse::from_json(line).expect("well-formed response").response);
    } else if !line.contains("\"kind\":\"eval_result\"") {
        eprintln!("loadgen: daemon answered {line:?} instead of an eval_result");
        exit(1);
    }
}

/// One phase's merged measurement.
struct Measured {
    wall_secs: f64,
    requests: u64,
    latency: LatencyHistogram,
}

impl Measured {
    fn rps(&self) -> f64 {
        self.requests as f64 / self.wall_secs
    }
}

/// N clients, each opening a fresh connection per request — the v1
/// one-shot baseline.
fn run_oneshot(addr: SocketAddr, clients: usize, requests: usize) -> Measured {
    let line = probe().to_json();
    let started = Instant::now();
    let histograms: Vec<LatencyHistogram> = thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let line = &line;
                s.spawn(move || {
                    let mut histogram = LatencyHistogram::new();
                    for i in 0..requests {
                        let t0 = Instant::now();
                        let lines = request_lines(addr, line).unwrap_or_else(|e| {
                            eprintln!("loadgen: one-shot request failed: {e}");
                            exit(1);
                        });
                        histogram.record(t0.elapsed().as_micros() as u64);
                        expect_eval_line(&lines[0], i == 0);
                    }
                    histogram
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let wall_secs = started.elapsed().as_secs_f64();
    let mut latency = LatencyHistogram::new();
    for h in &histograms {
        latency.merge(h);
    }
    Measured { wall_secs, requests: (clients * requests) as u64, latency }
}

/// N clients, each holding one persistent v2 session with `window`
/// requests in flight — the event loop's native mode.
fn run_session(addr: SocketAddr, clients: usize, requests: usize, window: usize) -> Measured {
    let request = probe();
    let started = Instant::now();
    let histograms: Vec<LatencyHistogram> = thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let request = &request;
                s.spawn(move || {
                    let mut histogram = LatencyHistogram::new();
                    let mut session = Session::connect(addr).unwrap_or_else(|e| {
                        eprintln!("loadgen: cannot open a session: {e}");
                        exit(1);
                    });
                    let mut sent_at: HashMap<u64, Instant> = HashMap::new();
                    let mut sent = 0usize;
                    let mut done = 0usize;
                    while done < requests {
                        while sent < requests && sent_at.len() < window {
                            let id = session.send(request).unwrap_or_else(|e| {
                                eprintln!("loadgen: session send failed: {e}");
                                exit(1);
                            });
                            sent_at.insert(id, Instant::now());
                            sent += 1;
                        }
                        let line = session.recv_line().unwrap_or_else(|e| {
                            eprintln!("loadgen: session recv failed: {e}");
                            exit(1);
                        });
                        let t0 = fast_id(&line)
                            .and_then(|id| sent_at.remove(&id))
                            .expect("response for an in-flight id");
                        histogram.record(t0.elapsed().as_micros() as u64);
                        expect_eval_line(&line, done == 0);
                        done += 1;
                    }
                    histogram
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let wall_secs = started.elapsed().as_secs_f64();
    let mut latency = LatencyHistogram::new();
    for h in &histograms {
        latency.merge(h);
    }
    Measured { wall_secs, requests: (clients * requests) as u64, latency }
}

struct LoadRow {
    clients: usize,
    baseline: Measured,
    session: Measured,
}

struct ShardRow {
    shards: usize,
    sweep_ms: f64,
    points: usize,
}

/// Times one cold sharded sweep across `shards` fresh workers.
fn run_shards(shards: usize) -> ShardRow {
    let mut workers = Vec::new();
    let mut handles = Vec::new();
    for _ in 0..shards {
        let (addr, handle) = start_server();
        workers.push(addr);
        handles.push(handle);
    }
    let spec = SweepSpec::default();
    let constraints = Constraints::default();
    let started = Instant::now();
    let exploration = sharded_sweep(&workers, &spec, LineRate::TEN_GBE, &constraints)
        .unwrap_or_else(|e| {
            eprintln!("loadgen: sharded sweep failed: {e}");
            exit(1);
        });
    let sweep_ms = started.elapsed().as_secs_f64() * 1e3;
    for addr in workers {
        shut_down(addr);
    }
    for handle in handles {
        let _ = handle.join();
    }
    ShardRow { shards, sweep_ms, points: exploration.all.len() }
}

fn parse_list(cli: &Cli, what: &str, raw: &str) -> Vec<usize> {
    let list: Result<Vec<usize>, _> =
        raw.split(',').map(|part| part.trim().parse::<usize>()).collect();
    match list {
        Ok(values) if !values.is_empty() && values.iter().all(|&v| v > 0) => values,
        _ => cli.fail(&format!("{what} must be a comma-separated list of positive integers")),
    }
}

fn render_json(rows: &[LoadRow], shards: &[ShardRow], requests: usize, window: usize) -> String {
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"requests_per_client\": {requests},\n"));
    json.push_str(&format!("  \"session_window\": {window},\n"));
    json.push_str("  \"load\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"clients\": {}, \"oneshot_rps\": {:.0}, \"session_rps\": {:.0}, \
             \"speedup\": {:.2}, \"oneshot_p50_us\": {}, \"oneshot_p99_us\": {}, \
             \"session_p50_us\": {}, \"session_p90_us\": {}, \"session_p99_us\": {}}}{sep}\n",
            row.clients,
            row.baseline.rps(),
            row.session.rps(),
            row.session.rps() / row.baseline.rps(),
            row.baseline.latency.p50(),
            row.baseline.latency.p99(),
            row.session.latency.p50(),
            row.session.latency.p90(),
            row.session.latency.p99(),
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"sharded_sweep\": [\n");
    for (i, row) in shards.iter().enumerate() {
        let sep = if i + 1 < shards.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"shards\": {}, \"points\": {}, \"cold_sweep_ms\": {:.1}}}{sep}\n",
            row.shards, row.points, row.sweep_ms
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

fn main() {
    let cli = Cli::new("loadgen", "measure taco-served throughput and latency on loopback")
        .opt("--clients", "LIST", "comma-separated concurrent client counts (default 8,64,256)")
        .opt("--requests", "N", "measured requests per client (default 200)")
        .opt("--window", "N", "in-flight requests per v2 session (default 8)")
        .opt("--shards", "LIST", "comma-separated shard worker counts (default 1,3)")
        .opt("--json", "PATH", "also write the measurements as a JSON artefact");
    let args = cli.parse_or_exit();
    let clients = parse_list(&cli, "--clients", args.opt("--clients").unwrap_or("8,64,256"));
    let requests: usize =
        args.opt_parsed("--requests").unwrap_or_else(|e| cli.fail(&e)).unwrap_or(200);
    let window: usize =
        args.opt_parsed("--window").unwrap_or_else(|e| cli.fail(&e)).unwrap_or(8).max(1);
    let shard_counts = parse_list(&cli, "--shards", args.opt("--shards").unwrap_or("1,3"));

    let (addr, handle) = start_server();
    // Warm the probe point: the measured phases must hit the inline
    // cache path so they benchmark serving, not simulation.
    let lines = request_lines(addr, &probe().to_json()).expect("warmup request");
    expect_eval(&ApiResponse::from_json(&lines[0]).expect("warmup response"));
    // A short unmeasured burst settles one-time costs (the daemon's
    // response memo, thread stacks, allocator warm-up) before timing.
    run_session(addr, 2, 100, window);

    println!("loadgen: {} requests/client, session window {window}, daemon at {addr}", requests);
    println!(
        "{:>8} | {:>12} {:>11} | {:>12} {:>11} {:>11} | {:>7}",
        "clients", "oneshot rps", "p50 us", "session rps", "p50 us", "p99 us", "speedup"
    );
    let mut rows = Vec::new();
    for &n in &clients {
        let baseline = run_oneshot(addr, n, requests);
        let session = run_session(addr, n, requests, window);
        println!(
            "{:>8} | {:>12.0} {:>11} | {:>12.0} {:>11} {:>11} | {:>6.2}x",
            n,
            baseline.rps(),
            baseline.latency.p50(),
            session.rps(),
            session.latency.p50(),
            session.latency.p99(),
            session.rps() / baseline.rps(),
        );
        rows.push(LoadRow { clients: n, baseline, session });
    }
    shut_down(addr);
    let _ = handle.join();

    let mut shard_rows = Vec::new();
    for &count in &shard_counts {
        let row = run_shards(count);
        println!(
            "sharded sweep: {} worker(s), {} points, cold wall {:.1} ms",
            row.shards, row.points, row.sweep_ms
        );
        shard_rows.push(row);
    }

    if let Some(path) = args.opt("--json") {
        let json = render_json(&rows, &shard_rows, requests, window);
        let mut file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("loadgen: cannot write {path}: {e}");
            exit(1);
        });
        file.write_all(json.as_bytes()).expect("write bench json");
        println!("wrote {path}");
    }
}
