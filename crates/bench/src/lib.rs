//! Benchmark harness for the TACO IPv6 reproduction.
//!
//! The library part is small: the [`cli`] argument parser every binary
//! shares (one dialect, one tested `--help` generator) plus a few sweep
//! constants.  The rest is the binaries and Criterion benches:
//!
//! | target | regenerates |
//! |---|---|
//! | `cargo run -p taco-bench --release --bin table1` | the paper's Table 1 |
//! | `cargo run -p taco-bench --release --bin scaling` | cycles vs table size (the structure behind Table 1) |
//! | `cargo run -p taco-bench --release --bin dse` | the automated design-space exploration (paper's future work) |
//! | `cargo run -p taco-bench --release --bin ablation` | sequential-scan microcode tunables (unroll, screening word) |
//! | `cargo run -p taco-bench --release --bin sensitivity` | required clock vs packet-size assumption |
//! | `cargo run -p taco-bench --release --bin report` | a live markdown reproduction report with a paper-claim checklist |
//! | `cargo run -p taco-bench --release --bin scenarios` | the built-in behavioural workloads across the three table organisations |
//! | `cargo bench -p taco-bench --bench table1` | per-cell evaluation latency |
//! | `cargo bench -p taco-bench --bench lookup_scaling` | behavioural LPM engines across table sizes |
//! | `cargo bench -p taco-bench --bench optimizer` | the Fig. 3 schedule pipeline |
//! | `cargo bench -p taco-bench --bench simulator` | raw simulator throughput |
//! | `cargo run -p taco-bench --release --bin taco-cli` | client/server front end for the `taco-served` daemon |
//! | `cargo run -p taco-bench --release --bin loadgen` | daemon throughput/latency under concurrent persistent clients (`BENCH_served.json`) |

pub mod cli;

/// The routing-table sizes the scaling targets sweep.
pub const SCALING_SIZES: [usize; 6] = [4, 16, 32, 64, 128, 256];
