//! Property test: replaying a `RingTracer` capture reproduces `SimStats`.
//!
//! The trace subsystem and the aggregate counters are two observers of the
//! same execution; if they ever disagree, one of them is lying.  Random
//! straight-line programs (guaranteed to halt) built from guarded moves,
//! datapath triggers and stalling RTU lookups are run under a
//! large-capacity `RingTracer`, and [`TraceCounters::from_events`] must
//! equal [`TraceCounters::from_stats`] exactly — `moves_executed`,
//! `moves_squashed`, per-instance `fu_instance_triggers` and
//! `stall_cycles`, across 1–3 bus schedules and RTU latencies 1–9.

#![cfg(feature = "proptest")]

use proptest::prelude::*;

use taco::isa::{schedule, CodeBuilder, FuKind, MachineConfig, MoveSeq};
use taco::sim::{
    MapRtu, Processor, RingTracer, RtuConfig, RtuResult, TraceCounters,
};

/// One straight-line template; every template terminates, so any program
/// built from them halts.
#[derive(Debug, Clone)]
enum Op {
    /// `value -> regs0.rN`.
    LoadImm { reg: u8, value: u32 },
    /// Counter set + add + read back: two triggers on a chosen instance.
    CounterAdd { fu: u8, add: u32, out: u8 },
    /// Matcher probe followed by a guarded pair: exactly one of the two
    /// moves squashes every run.
    MatchSelect { fu: u8, mask: u32, refv: u32, probe: u32, out: u8 },
    /// RTU lookup: operand writes, trigger, result read — the read stalls
    /// until the configured latency elapses.
    RtuLookup { key: u32, out: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    let reg = || 0u8..8;
    prop_oneof![
        (reg(), any::<u32>()).prop_map(|(reg, value)| Op::LoadImm { reg, value }),
        (0u8..2, any::<u32>(), reg()).prop_map(|(fu, add, out)| Op::CounterAdd { fu, add, out }),
        (0u8..2, any::<u32>(), any::<u32>(), any::<u32>(), reg()).prop_map(
            |(fu, mask, refv, probe, out)| Op::MatchSelect { fu, mask, refv, probe, out }
        ),
        (any::<u32>(), reg()).prop_map(|(key, out)| Op::RtuLookup { key, out }),
    ]
}

fn build(ops: &[Op]) -> MoveSeq {
    let mut b = CodeBuilder::new();
    for op in ops {
        match *op {
            Op::LoadImm { reg, value } => b.mv(value, b.reg(reg)),
            Op::CounterAdd { fu, add, out } => {
                let c = b.fu(FuKind::Counter, fu);
                b.mv(0u32, c.port("tset"));
                b.mv(add, c.port("tadd"));
                b.mv(c.port("r"), b.reg(out));
            }
            Op::MatchSelect { fu, mask, refv, probe, out } => {
                let m = b.fu(FuKind::Matcher, fu);
                b.mv(mask, m.port("mask"));
                b.mv(refv, m.port("refv"));
                b.mv(probe, m.port("t"));
                b.mv_if(m.guard("match"), 1u32, b.reg(out));
                b.mv_unless(m.guard("match"), 0u32, b.reg(out));
            }
            Op::RtuLookup { key, out } => {
                let rtu = b.fu(FuKind::Rtu, 0);
                b.mv(key, rtu.port("k0"));
                b.mv(key ^ 0xdead_beef, rtu.port("k1"));
                b.mv(0u32, rtu.port("k2"));
                b.mv(key, rtu.port("t"));
                b.mv(rtu.port("iface"), b.reg(out));
            }
        }
    }
    b.finish()
}

/// The RTU backend: answers half the key space so both hit and miss paths
/// appear.
fn backend() -> MapRtu {
    let mut map = MapRtu::new();
    for key in 0u32..8 {
        map.insert([key, key ^ 0xdead_beef, 0, key], RtuResult { iface: key, handle: key });
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ring_replay_reproduces_sim_stats(
        ops in prop::collection::vec(arb_op(), 1..24),
        buses in 1u8..=3,
        replication in 1u8..=2,
        rtu_latency in 1u32..=9,
    ) {
        let seq = build(&ops);
        let mut machine = MachineConfig::new(buses);
        if replication > 1 {
            for kind in FuKind::REPLICABLE {
                machine = machine.with_fu_count(kind, replication);
            }
        }
        let mut program = schedule(&seq, &machine);
        program.resolve_labels().expect("straight-line code");
        let mut cpu = Processor::new(machine, program).expect("valid program");
        cpu.set_rtu(RtuConfig::new(Box::new(backend())).with_latency(rtu_latency));

        let mut ring = RingTracer::new(1 << 20);
        let stats = cpu.run_traced(1_000_000, &mut ring).expect("straight-line code halts");
        prop_assert!(ring.is_complete(), "capture evicted {} events", ring.dropped());

        let replayed = TraceCounters::from_events(ring.events());
        let reported = TraceCounters::from_stats(&stats);
        prop_assert_eq!(replayed, reported);
    }

    #[test]
    fn traced_run_is_observationally_identical_to_untraced(
        ops in prop::collection::vec(arb_op(), 1..16),
        buses in 1u8..=3,
        rtu_latency in 1u32..=6,
    ) {
        let seq = build(&ops);
        let machine = MachineConfig::new(buses);
        let run = |traced: bool| {
            let mut program = schedule(&seq, &machine);
            program.resolve_labels().expect("straight-line code");
            let mut cpu = Processor::new(machine.clone(), program).expect("valid program");
            cpu.set_rtu(RtuConfig::new(Box::new(backend())).with_latency(rtu_latency));
            let stats = if traced {
                let mut ring = RingTracer::new(1 << 20);
                cpu.run_traced(1_000_000, &mut ring).expect("halts")
            } else {
                cpu.run(1_000_000).expect("halts")
            };
            let regs: [u32; 16] = std::array::from_fn(|i| cpu.reg(i as u8));
            (stats, regs)
        };
        prop_assert_eq!(run(false), run(true), "tracing must be a pure observer");
    }
}
