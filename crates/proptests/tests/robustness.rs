//! Property tests: no parser in the workspace panics on arbitrary input —
//! every malformed wire datagram, control packet or assembly text comes
//! back as a structured error.  A router's parsers face the open Internet;
//! "attacker-controlled bytes cause a panic" is a vulnerability class this
//! file keeps extinct.

#![cfg(feature = "proptest")]

use proptest::prelude::*;

use taco::ipv6::icmpv6::Icmpv6Message;
use taco::ipv6::ripng::RipngPacket;
use taco::ipv6::udp::UdpDatagram;
use taco::ipv6::{exthdr, Datagram, Ipv6Address, Ipv6Header, NextHeader};
use taco::isa::asm;
use taco::router::layout::words_to_bytes;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn datagram_parse_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Datagram::parse(&bytes);
    }

    #[test]
    fn header_parse_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = Ipv6Header::parse(&bytes);
    }

    #[test]
    fn extension_chain_parse_never_panics(
        first in any::<u8>(),
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = exthdr::parse_chain(NextHeader::from(first), &bytes);
    }

    #[test]
    fn udp_parse_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
        src in any::<[u8; 16]>(),
        dst in any::<[u8; 16]>(),
    ) {
        let _ = UdpDatagram::parse(&bytes, &Ipv6Address::new(src), &Ipv6Address::new(dst));
    }

    #[test]
    fn icmpv6_parse_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
        src in any::<[u8; 16]>(),
        dst in any::<[u8; 16]>(),
    ) {
        let _ = Icmpv6Message::parse(&bytes, &Ipv6Address::new(src), &Ipv6Address::new(dst));
    }

    #[test]
    fn ripng_parse_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = RipngPacket::parse(&bytes);
    }

    #[test]
    fn asm_parse_never_panics(text in "\\PC*") {
        let _ = asm::parse(&text);
    }

    #[test]
    fn asm_parse_never_panics_on_plausible_syntax(
        text in "[a-z0-9@?!.:;|> \\t\\n-]{0,200}",
    ) {
        // A denser generator around the grammar's own alphabet.
        let _ = asm::parse(&text);
    }

    #[test]
    fn address_parse_never_panics(text in "\\PC{0,64}") {
        let _ = text.parse::<Ipv6Address>();
        let _ = text.parse::<taco::ipv6::Ipv6Prefix>();
    }

    #[test]
    fn words_to_bytes_handles_any_length(
        words in prop::collection::vec(any::<u32>(), 0..64),
        len in 0usize..512,
    ) {
        let out = words_to_bytes(&words, len);
        prop_assert!(out.len() <= len);
        prop_assert!(out.len() <= words.len() * 4);
    }

    #[test]
    fn malformed_traffic_never_kills_the_reference_router(
        bytes in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        use taco::router::reference::ReferenceRouter;
        use taco::routing::{PortId, SequentialTable};
        let mut router = ReferenceRouter::new(
            SequentialTable::new(),
            vec!["fe80::1".parse().expect("valid")],
        );
        let _ = router.process(PortId(0), &bytes);
    }
}
