//! Property test: the optimizer + scheduler preserve program semantics.
//!
//! Random straight-line TTA programs (built from fold-safe operation
//! templates over virtual FU instances) are executed two ways:
//!
//! * the *reference*: unscheduled, one move per instruction, on a machine
//!   wide enough that no virtual instance folds;
//! * the *subject*: bypassed, dead-move-eliminated and list-scheduled onto
//!   a random configuration (1–4 buses, 1–3× FU replication).
//!
//! The architectural outcome — all sixteen registers and the touched
//! memory words — must be identical.

#![cfg(feature = "proptest")]

use proptest::prelude::*;

use taco::isa::{optimize, schedule, validate_schedule, CodeBuilder, FuKind, MachineConfig, MoveSeq, Program};
use taco::sim::Processor;

/// One fold-safe operation template.
#[derive(Debug, Clone)]
enum Op {
    LoadImm { reg: u8, value: u32 },
    CounterAdd { fu: u8, base: u8, add: u32, out: u8 },
    Shift { fu: u8, amount: u32, left: bool, src: u8, out: u8 },
    MaskInsert { fu: u8, mask: u32, value: u32, src: u8, out: u8 },
    MatchSelect { fu: u8, mask: u32, refv: u32, probe: u8, hit: u32, miss: u32, out: u8 },
    CompareSelect { fu: u8, refv: u32, probe: u8, if_lt: u32, out: u8 },
    MemRoundTrip { addr: u32, src: u8, out: u8 },
    ChecksumWord { src: u8, out: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    let reg = || 0u8..8;
    let fu = || 0u8..3;
    prop_oneof![
        (reg(), any::<u32>()).prop_map(|(reg, value)| Op::LoadImm { reg, value }),
        (fu(), reg(), any::<u32>(), reg())
            .prop_map(|(fu, base, add, out)| Op::CounterAdd { fu, base, add, out }),
        (fu(), 0u32..32, any::<bool>(), reg(), reg())
            .prop_map(|(fu, amount, left, src, out)| Op::Shift { fu, amount, left, src, out }),
        (fu(), any::<u32>(), any::<u32>(), reg(), reg())
            .prop_map(|(fu, mask, value, src, out)| Op::MaskInsert { fu, mask, value, src, out }),
        (fu(), any::<u32>(), any::<u32>(), reg(), any::<u32>(), any::<u32>(), reg()).prop_map(
            |(fu, mask, refv, probe, hit, miss, out)| Op::MatchSelect {
                fu, mask, refv, probe, hit, miss, out
            }
        ),
        (fu(), any::<u32>(), reg(), any::<u32>(), reg())
            .prop_map(|(fu, refv, probe, if_lt, out)| Op::CompareSelect { fu, refv, probe, if_lt, out }),
        (0u32..64, reg(), reg()).prop_map(|(addr, src, out)| Op::MemRoundTrip { addr, src, out }),
        (reg(), reg()).prop_map(|(src, out)| Op::ChecksumWord { src, out }),
    ]
}

/// Emits one template as an atomic def-use chain (fold-safe by
/// construction).
fn emit(b: &mut CodeBuilder, op: &Op) {
    match *op {
        Op::LoadImm { reg, value } => b.mv(value, b.reg(reg)),
        Op::CounterAdd { fu, base, add, out } => {
            let c = b.fu(FuKind::Counter, fu);
            b.mv(b.reg(base), c.port("tset"));
            b.mv(add, c.port("tadd"));
            b.mv(c.port("r"), b.reg(out));
        }
        Op::Shift { fu, amount, left, src, out } => {
            let s = b.fu(FuKind::Shifter, 0); // shifter is a singleton by default
            let _ = fu;
            b.mv(amount, s.port("amount"));
            b.mv(b.reg(src), s.port(if left { "tshl" } else { "tshr" }));
            b.mv(s.port("r"), b.reg(out));
        }
        Op::MaskInsert { fu, mask, value, src, out } => {
            let m = b.fu(FuKind::Masker, 0);
            let _ = fu;
            b.mv(mask, m.port("mask"));
            b.mv(value, m.port("value"));
            b.mv(b.reg(src), m.port("t"));
            b.mv(m.port("r"), b.reg(out));
        }
        Op::MatchSelect { fu, mask, refv, probe, hit, miss, out } => {
            let m = b.fu(FuKind::Matcher, fu);
            b.mv(mask, m.port("mask"));
            b.mv(refv, m.port("refv"));
            b.mv(b.reg(probe), m.port("t"));
            b.mv_if(m.guard("match"), hit, b.reg(out));
            b.mv_unless(m.guard("match"), miss, b.reg(out));
        }
        Op::CompareSelect { fu, refv, probe, if_lt, out } => {
            let c = b.fu(FuKind::Comparator, fu);
            b.mv(refv, c.port("refv"));
            b.mv(b.reg(probe), c.port("t"));
            b.mv_if(c.guard("lt"), if_lt, b.reg(out));
        }
        Op::MemRoundTrip { addr, src, out } => {
            let mmu = b.fu(FuKind::Mmu, 0);
            b.mv(addr, mmu.port("addr"));
            b.mv(b.reg(src), mmu.port("twrite"));
            b.mv(addr, mmu.port("addr"));
            b.mv(0u32, mmu.port("tread"));
            b.mv(mmu.port("r"), b.reg(out));
        }
        Op::ChecksumWord { src, out } => {
            let cs = b.fu(FuKind::Checksum, 0);
            b.mv(0u32, cs.port("tclr"));
            b.mv(b.reg(src), cs.port("tadd"));
            b.mv(cs.port("r"), b.reg(out));
        }
    }
}

fn build(ops: &[Op]) -> MoveSeq {
    let mut b = CodeBuilder::new();
    for op in ops {
        emit(&mut b, op);
    }
    b.finish()
}

/// A machine wide enough that virtual instances 0..3 exist physically.
fn wide_machine() -> MachineConfig {
    MachineConfig::new(1)
        .with_fu_count(FuKind::Counter, 3)
        .with_fu_count(FuKind::Comparator, 3)
        .with_fu_count(FuKind::Matcher, 3)
}

fn run(config: MachineConfig, program: Program) -> ([u32; 16], Vec<u32>) {
    let mut program = program;
    program.resolve_labels().expect("straight-line code");
    let mut cpu = Processor::new(config, program).expect("valid program");
    cpu.run(100_000).expect("straight-line code halts");
    let regs = std::array::from_fn(|i| cpu.reg(i as u8));
    let mem = cpu.memory().read_block(0, 64).expect("in range").to_vec();
    (regs, mem)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scheduling_preserves_architectural_state(
        ops in prop::collection::vec(arb_op(), 1..20),
        buses in 1u8..=4,
        replication in 1u8..=3,
    ) {
        let seq = build(&ops);
        let reference = run(
            wide_machine(),
            Program::from_moves(&seq, 1),
        );

        let mut machine = MachineConfig::new(buses);
        if replication > 1 {
            for kind in FuKind::REPLICABLE {
                machine = machine.with_fu_count(kind, replication);
            }
        }
        let mut optimized = seq.clone();
        optimize(&mut optimized);
        let subject = run(machine.clone(), schedule(&optimized, &machine));

        prop_assert_eq!(reference.0, subject.0, "registers diverged on {}", machine);
        prop_assert_eq!(reference.1, subject.1, "memory diverged on {}", machine);
    }

    #[test]
    fn scheduler_output_passes_structural_validation(
        ops in prop::collection::vec(arb_op(), 1..25),
        buses in 1u8..=4,
        replication in 1u8..=3,
    ) {
        let seq = build(&ops);
        let mut machine = MachineConfig::new(buses);
        if replication > 1 {
            for kind in FuKind::REPLICABLE {
                machine = machine.with_fu_count(kind, replication);
            }
        }
        let prog = schedule(&seq, &machine);
        prop_assert_eq!(validate_schedule(&prog, &machine), Ok(()));
    }

    #[test]
    fn encoding_round_trips_scheduled_programs(
        ops in prop::collection::vec(arb_op(), 1..20),
        buses in 1u8..=4,
    ) {
        use taco::isa::{decode, encode};
        let seq = build(&ops);
        let machine = MachineConfig::new(buses);
        let mut prog = schedule(&seq, &machine);
        prog.resolve_labels().expect("no labels in straight-line code");
        let enc = encode(&prog, &machine).expect("encodes");
        let dec = decode(&enc, &machine).expect("decodes");
        prop_assert_eq!(dec.instructions, prog.instructions);
        // A packed slot is narrow: the paper's "mostly addresses" word.
        prop_assert!(enc.slot_bits <= 32, "{}", enc.slot_bits);
    }

    #[test]
    fn scheduling_never_lengthens_the_program(
        ops in prop::collection::vec(arb_op(), 1..20),
        buses in 1u8..=4,
    ) {
        let seq = build(&ops);
        let machine = MachineConfig::new(buses);
        let scheduled = schedule(&seq, &machine);
        prop_assert!(scheduled.instructions.len() <= seq.len());
        prop_assert_eq!(scheduled.move_count(), seq.len());
    }
}
