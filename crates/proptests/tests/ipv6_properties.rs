//! Crate-local property tests for the address/prefix algebra the
//! longest-prefix-match engines are built on.

#![cfg(feature = "proptest")]

use proptest::prelude::*;

use taco_ipv6::{Ipv6Address, Ipv6Prefix};

fn arb_addr() -> impl Strategy<Value = Ipv6Address> {
    any::<[u8; 16]>().prop_map(Ipv6Address::new)
}

fn arb_prefix() -> impl Strategy<Value = Ipv6Prefix> {
    (arb_addr(), 0u8..=128)
        .prop_map(|(a, len)| Ipv6Prefix::new(a, len).expect("len in range"))
}

proptest! {
    #[test]
    fn words_and_segments_round_trip(a in arb_addr()) {
        prop_assert_eq!(Ipv6Address::from_words(a.to_words()), a);
        prop_assert_eq!(Ipv6Address::from_segments(a.to_segments()), a);
    }

    #[test]
    fn bit_accessors_agree_with_words(a in arb_addr(), bit in 0u8..128) {
        let words = a.to_words();
        let w = words[usize::from(bit) / 32];
        let expect = (w >> (31 - u32::from(bit) % 32)) & 1 == 1;
        prop_assert_eq!(a.bit(bit), expect);
    }

    #[test]
    fn with_bit_is_idempotent_and_invertible(a in arb_addr(), bit in 0u8..128, v in any::<bool>()) {
        let set = a.with_bit(bit, v);
        prop_assert_eq!(set.bit(bit), v);
        prop_assert_eq!(set.with_bit(bit, v), set);
        prop_assert_eq!(set.with_bit(bit, a.bit(bit)), a);
    }

    #[test]
    fn common_prefix_len_is_symmetric_and_bounded(a in arb_addr(), b in arb_addr()) {
        let ab = a.common_prefix_len(&b);
        prop_assert_eq!(ab, b.common_prefix_len(&a));
        prop_assert!(ab <= 128);
        // The claimed common bits really are common.
        for bit in 0..ab {
            prop_assert_eq!(a.bit(bit), b.bit(bit));
        }
        // And the next bit (if any) differs.
        if ab < 128 {
            prop_assert_ne!(a.bit(ab), b.bit(ab));
        }
    }

    #[test]
    fn truncated_matches_mask_words(a in arb_addr(), len in 0u8..=128) {
        let p = Ipv6Prefix::new(a, len).expect("in range");
        let mask = p.mask_words();
        let t = a.truncated(len).to_words();
        let aw = a.to_words();
        for i in 0..4 {
            prop_assert_eq!(t[i], aw[i] & mask[i]);
        }
    }

    #[test]
    fn prefix_contains_its_own_addresses(p in arb_prefix(), noise in any::<[u8; 16]>()) {
        // Fill host bits with noise: the result must stay inside.
        let mut a = p.addr();
        for bit in p.len()..128 {
            a = a.with_bit(bit, noise[usize::from(bit) / 8] & (1 << (bit % 8)) != 0);
        }
        prop_assert!(p.contains(&a));
        // Canonicalisation: re-deriving the prefix from any member gives p.
        prop_assert_eq!(Ipv6Prefix::new(a, p.len()).expect("in range"), p);
    }

    #[test]
    fn covers_is_a_partial_order(p in arb_prefix(), q in arb_prefix()) {
        prop_assert!(p.covers(&p));
        if p.covers(&q) && q.covers(&p) {
            prop_assert_eq!(p, q);
        }
        // covers implies contains of the network address.
        if p.covers(&q) {
            prop_assert!(p.contains(&q.addr()));
            prop_assert!(p.len() <= q.len());
        }
    }

    #[test]
    fn display_parse_round_trip(p in arb_prefix(), a in arb_addr()) {
        prop_assert_eq!(p.to_string().parse::<Ipv6Prefix>().expect("parses"), p);
        prop_assert_eq!(a.to_string().parse::<Ipv6Address>().expect("parses"), a);
    }
}
