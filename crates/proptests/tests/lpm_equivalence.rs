//! Property test: the five longest-prefix-match engines (sequential scan,
//! balanced tree, CAM, trie, PATRICIA) are observationally identical —
//! same matched prefix for every address, on arbitrary route sets,
//! through arbitrary insert/remove histories.

#![cfg(feature = "proptest")]

use proptest::prelude::*;

use taco::ipv6::{Ipv6Address, Ipv6Prefix};
use taco::routing::{
    BalancedTreeTable, CamTable, LpmTable, PatriciaTable, PortId, Route, SequentialTable,
    TrieTable,
};

fn arb_prefix() -> impl Strategy<Value = Ipv6Prefix> {
    (any::<[u8; 16]>(), 0u8..=128).prop_map(|(octets, len)| {
        Ipv6Prefix::new(Ipv6Address::new(octets), len).expect("len <= 128")
    })
}

fn arb_route() -> impl Strategy<Value = Route> {
    (arb_prefix(), 0u16..8, 1u8..=15).prop_map(|(p, port, metric)| {
        Route::new(p, Ipv6Address::LOOPBACK, PortId(port), metric)
    })
}

fn arb_addr() -> impl Strategy<Value = Ipv6Address> {
    any::<[u8; 16]>().prop_map(Ipv6Address::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_engines_agree_on_lookups(
        routes in prop::collection::vec(arb_route(), 0..40),
        seed_routes in prop::collection::vec(arb_route(), 1..40),
        probes in prop::collection::vec(any::<prop::sample::Index>(), 1..20),
        noise in any::<[u8; 16]>(),
    ) {
        let all: Vec<Route> = routes.iter().chain(&seed_routes).copied().collect();
        let seq = SequentialTable::from_routes(all.iter().copied());
        let tree = BalancedTreeTable::from_routes(all.iter().copied());
        let cam = CamTable::from_routes(all.iter().copied());
        let trie = TrieTable::from_routes(all.iter().copied());
        let pat = PatriciaTable::from_routes(all.iter().copied());

        prop_assert_eq!(seq.len(), tree.len());
        prop_assert_eq!(seq.len(), cam.len());
        prop_assert_eq!(seq.len(), trie.len());
        prop_assert_eq!(seq.len(), pat.len());

        for idx in probes {
            // Probe both a route-interior address and a perturbed one.
            let base = all[idx.index(all.len())].prefix();
            let mut addr = base.addr();
            for bit in base.len()..128 {
                addr = addr.with_bit(bit, noise[usize::from(bit) / 8] & (1 << (bit % 8)) != 0);
            }
            for probe in [addr, Ipv6Address::new(noise)] {
                let expect = seq.lookup(&probe).into_route().map(|r| r.prefix());
                prop_assert_eq!(tree.lookup(&probe).into_route().map(|r| r.prefix()), expect,
                    "tree disagrees at {}", probe);
                prop_assert_eq!(cam.lookup(&probe).into_route().map(|r| r.prefix()), expect,
                    "cam disagrees at {}", probe);
                prop_assert_eq!(trie.lookup(&probe).into_route().map(|r| r.prefix()), expect,
                    "trie disagrees at {}", probe);
                prop_assert_eq!(pat.lookup(&probe).into_route().map(|r| r.prefix()), expect,
                    "patricia disagrees at {}", probe);
            }
        }
    }

    #[test]
    fn engines_agree_after_removals(
        routes in prop::collection::vec(arb_route(), 2..30),
        remove in prop::collection::vec(any::<prop::sample::Index>(), 1..10),
        probe in arb_addr(),
    ) {
        let mut seq = SequentialTable::from_routes(routes.iter().copied());
        let mut tree = BalancedTreeTable::from_routes(routes.iter().copied());
        let mut cam = CamTable::from_routes(routes.iter().copied());
        let mut trie = TrieTable::from_routes(routes.iter().copied());
        let mut pat = PatriciaTable::from_routes(routes.iter().copied());

        for idx in remove {
            let p = routes[idx.index(routes.len())].prefix();
            let a = seq.remove(&p).map(|r| r.prefix());
            prop_assert_eq!(tree.remove(&p).map(|r| r.prefix()), a);
            prop_assert_eq!(cam.remove(&p).map(|r| r.prefix()), a);
            prop_assert_eq!(trie.remove(&p).map(|r| r.prefix()), a);
            prop_assert_eq!(pat.remove(&p).map(|r| r.prefix()), a);
        }
        let expect = seq.lookup(&probe).into_route().map(|r| r.prefix());
        prop_assert_eq!(tree.lookup(&probe).into_route().map(|r| r.prefix()), expect);
        prop_assert_eq!(cam.lookup(&probe).into_route().map(|r| r.prefix()), expect);
        prop_assert_eq!(trie.lookup(&probe).into_route().map(|r| r.prefix()), expect);
        prop_assert_eq!(pat.lookup(&probe).into_route().map(|r| r.prefix()), expect);
    }

    #[test]
    fn replacement_semantics_agree(route in arb_route(), port2 in 0u16..8) {
        let updated = Route::new(route.prefix(), route.next_hop(), PortId(port2), route.metric());
        let mut seq = SequentialTable::new();
        let mut tree = BalancedTreeTable::new();
        let mut cam = CamTable::new();
        let mut trie = TrieTable::new();
        let mut pat = PatriciaTable::new();
        for t in [&mut seq as &mut dyn LpmTable, &mut tree, &mut cam, &mut trie, &mut pat] {
            prop_assert!(t.insert(route).is_none());
            let old = t.insert(updated);
            prop_assert_eq!(old.map(|r| r.interface()), Some(route.interface()));
            prop_assert_eq!(t.len(), 1);
            prop_assert_eq!(t.get(&route.prefix()).map(|r| r.interface()), Some(PortId(port2)));
        }
    }
}
