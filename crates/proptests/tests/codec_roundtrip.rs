//! Property tests: every wire codec round-trips — IPv6 datagrams (with
//! extension headers), UDP, ICMPv6, RIPng, the memory word packing, and the
//! TACO assembly format.

#![cfg(feature = "proptest")]

use proptest::prelude::*;

use taco::ipv6::exthdr::{FragmentHeader, OptionsHeader, RoutingHeader};
use taco::ipv6::ripng::{Command, RipngPacket, RouteEntry};
use taco::ipv6::udp::UdpDatagram;
use taco::ipv6::{
    checksum, Datagram, ExtensionHeader, Ipv6Address, Ipv6Prefix, NextHeader,
};
use taco::isa::asm;
use taco::router::layout::{datagram_to_words, words_to_bytes};

fn arb_addr() -> impl Strategy<Value = Ipv6Address> {
    any::<[u8; 16]>().prop_map(Ipv6Address::new)
}

fn arb_ext() -> impl Strategy<Value = ExtensionHeader> {
    prop_oneof![
        // Options bodies must be valid TLVs for canonical round-tripping;
        // encode each as a single experimental option (type 0x3e).
        prop::collection::vec(any::<u8>(), 0..16).prop_map(|body| {
            let mut tlv = vec![0x3e, body.len() as u8];
            tlv.extend(body);
            ExtensionHeader::HopByHop(OptionsHeader { options: tlv })
        }),
        prop::collection::vec(any::<u8>(), 0..16).prop_map(|body| {
            let mut tlv = vec![0x3e, body.len() as u8];
            tlv.extend(body);
            ExtensionHeader::DestinationOptions(OptionsHeader { options: tlv })
        }),
        (any::<u8>(), prop::collection::vec(any::<[u8; 16]>(), 0..3)).prop_map(
            |(segments_left, addresses)| {
                ExtensionHeader::Routing(RoutingHeader {
                    routing_type: 0,
                    segments_left,
                    addresses,
                })
            }
        ),
        (0u16..8192, any::<bool>(), any::<u32>()).prop_map(|(offset, more, id)| {
            ExtensionHeader::Fragment(FragmentHeader { offset, more, id })
        }),
    ]
}

fn arb_datagram() -> impl Strategy<Value = Datagram> {
    (
        arb_addr(),
        arb_addr(),
        any::<u8>(),
        0u32..(1 << 20),
        any::<u8>(),
        prop::collection::vec(arb_ext(), 0..3),
        prop::collection::vec(any::<u8>(), 0..128),
    )
        .prop_map(|(src, dst, tc, fl, hl, exts, payload)| {
            let mut b = Datagram::builder(src, dst)
                .traffic_class(tc)
                .flow_label(fl)
                .hop_limit(hl);
            for e in exts {
                b = b.extension(e);
            }
            b.payload(NextHeader::Udp, payload).build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn datagram_bytes_round_trip(d in arb_datagram()) {
        let bytes = d.to_bytes();
        prop_assert_eq!(Datagram::parse(&bytes).expect("reparse"), d);
    }

    #[test]
    fn datagram_word_packing_round_trips(d in arb_datagram()) {
        let words = datagram_to_words(&d);
        let bytes = words_to_bytes(&words, d.wire_len());
        prop_assert_eq!(Datagram::parse(&bytes).expect("reparse"), d);
    }

    #[test]
    fn udp_round_trips_and_verifies(
        src in arb_addr(), dst in arb_addr(),
        sport in any::<u16>(), dport in any::<u16>(),
        data in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let dgram = UdpDatagram::new(sport, dport, data, &src, &dst);
        let parsed = UdpDatagram::parse(&dgram.to_bytes(), &src, &dst).expect("verify");
        prop_assert_eq!(parsed, dgram);
    }

    #[test]
    fn checksum_detects_single_byte_corruption(
        mut data in prop::collection::vec(any::<u8>(), 2..64),
        flip in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        if data.len() % 2 == 1 {
            data.push(0); // protocols pad to a 16-bit boundary before summing
        }
        let c = checksum::checksum(&data);
        let mut buf = data.clone();
        buf.extend_from_slice(&c.to_be_bytes());
        prop_assert_eq!(checksum::checksum(&buf), 0);
        let i = flip.index(buf.len());
        buf[i] ^= 1 << bit;
        prop_assert_ne!(checksum::checksum(&buf), 0, "corruption at byte {} undetected", i);
    }

    #[test]
    fn ripng_round_trips(
        cmd in prop_oneof![Just(Command::Request), Just(Command::Response)],
        entries in prop::collection::vec(
            (any::<[u8; 16]>(), 0u8..=128, any::<u16>(), 1u8..=16),
            0..25,
        ),
    ) {
        let pkt = RipngPacket {
            command: cmd,
            entries: entries
                .into_iter()
                .map(|(a, len, tag, metric)| {
                    let p = Ipv6Prefix::new(Ipv6Address::new(a), len).expect("valid");
                    RouteEntry::new(p, tag, metric)
                })
                .collect(),
        };
        prop_assert_eq!(RipngPacket::parse(&pkt.to_bytes()).expect("reparse"), pkt);
    }

    #[test]
    fn asm_print_parse_round_trips(
        imms in prop::collection::vec(any::<u32>(), 1..12),
        buses in 1u8..4,
    ) {
        // Build a small but structurally varied program from the immediates.
        let mut text = String::from("start:\n");
        for (i, v) in imms.iter().enumerate() {
            match i % 4 {
                0 => text.push_str(&format!("{v} -> cnt0.tset | {v} -> cnt1.stop\n")),
                1 => text.push_str(&format!("0x{v:x} -> mask0.mask | ... \n")),
                2 => text.push_str("?cnt0.done cnt0.r -> regs0.r3\n"),
                _ => text.push_str("!cnt1.zero @start -> nc0.pc\n"),
            }
        }
        let prog = asm::parse(&text).expect("generated text parses");
        let printed = asm::print(&prog);
        let reparsed = asm::parse(&printed).expect("printed text parses");
        prop_assert_eq!(reparsed, prog);
        let _ = buses;
    }
}
