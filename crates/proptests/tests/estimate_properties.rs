//! Property tests for the physical-estimation model, extracted from
//! `taco-estimate/src/model.rs` so the workspace itself carries no
//! proptest dependency (see the manifest header of this package).

#![cfg(feature = "proptest")]

use proptest::prelude::*;

use taco_estimate::Estimator;
use taco_isa::{FuKind, MachineConfig};

fn arb_config() -> impl Strategy<Value = MachineConfig> {
    (1u8..=4, 1u8..=3).prop_map(|(buses, repl)| {
        let mut m = MachineConfig::new(buses);
        if repl > 1 {
            for kind in FuKind::REPLICABLE {
                m = m.with_fu_count(kind, repl);
            }
        }
        m
    })
}

proptest! {
    #[test]
    fn power_and_area_monotone_in_frequency(
        config in arb_config(),
        f_lo in 1e6f64..5e8,
        delta in 1e6f64..4e8,
    ) {
        let est = Estimator::new();
        let lo = est.estimate(&config, f_lo).feasible().cloned()
            .expect("below ceiling");
        let hi = est.estimate(&config, f_lo + delta).feasible().cloned()
            .expect("below ceiling");
        prop_assert!(hi.power_w > lo.power_w);
        prop_assert!(hi.area_mm2 >= lo.area_mm2);
        prop_assert!(hi.sizing_factor >= lo.sizing_factor);
    }

    #[test]
    fn bigger_machines_cost_more(
        buses in 1u8..=3,
        f in 1e7f64..8e8,
    ) {
        let est = Estimator::new();
        let small = est.estimate(&MachineConfig::new(buses), f)
            .feasible().cloned().expect("feasible");
        let big_cfg = MachineConfig::new(buses + 1)
            .with_fu_count(FuKind::Matcher, 3);
        let big = est.estimate(&big_cfg, f).feasible().cloned().expect("feasible");
        prop_assert!(big.area_mm2 > small.area_mm2);
        prop_assert!(big.power_w > small.power_w);
    }

    #[test]
    fn feasibility_is_a_threshold(config in arb_config(), f in 1e6f64..4e9) {
        let est = Estimator::new();
        let feasible = est.estimate(&config, f).is_feasible();
        prop_assert_eq!(feasible, f < est.max_frequency_hz());
    }
}
