//! Property tests for the `v1` wire API: randomised requests round-trip
//! through JSON exactly, and arbitrary byte soup never panics the strict
//! parser.
//!
//! The in-workspace suite (`crates/core/tests/api_roundtrip.rs`)
//! enumerates the builtin cross product; this registry-gated suite covers
//! the *randomised* remainder — arbitrary bus/replication/memory-port
//! counts, arbitrary finite line rates, reseeded workloads and fault
//! plans, and adversarial constraint corners.

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use proptest::sample::Index;

use taco::eval::api::{ApiRequest, ApiResponse, ConfigSpec, EvalSpec};
use taco::eval::{Constraints, FaultPlan, LineRate, SweepSpec, Workload};
use taco::routing::TableKind;

fn arb_kind() -> impl Strategy<Value = TableKind> {
    prop_oneof![
        Just(TableKind::Sequential),
        Just(TableKind::BalancedTree),
        Just(TableKind::Cam),
        Just(TableKind::Trie),
        Just(TableKind::Patricia),
    ]
}

fn arb_config() -> impl Strategy<Value = ConfigSpec> {
    (arb_kind(), 1u8..=8, 1u8..=4, 1u8..=4).prop_map(
        |(table, buses, replication, memory_ports)| ConfigSpec {
            table,
            buses,
            replication,
            memory_ports,
        },
    )
}

fn arb_rate() -> impl Strategy<Value = LineRate> {
    // Positive *normal* floats and non-zero packet sizes — exactly the
    // domain `validated_rate` admits.
    (1.0f64..1e13, 1u32..=65535)
        .prop_map(|(bits_per_second, packet_bytes)| LineRate::new(bits_per_second, packet_bytes))
}

fn arb_workload() -> impl Strategy<Value = Option<Workload>> {
    proptest::option::of((any::<Index>(), any::<u64>()).prop_map(|(index, seed)| {
        let builtin = Workload::builtin();
        builtin[index.index(builtin.len())].with_seed(seed)
    }))
}

fn arb_faults() -> impl Strategy<Value = Option<FaultPlan>> {
    proptest::option::of((any::<Index>(), any::<u64>()).prop_map(|(index, seed)| {
        let builtin = FaultPlan::builtin();
        let mut plan = builtin[index.index(builtin.len())].1;
        plan.seed = seed;
        plan
    }))
}

fn arb_constraints() -> impl Strategy<Value = Constraints> {
    (
        -1e6f64..1e6,
        -1e6f64..1e6,
        proptest::option::of(any::<u64>()),
        proptest::option::of(any::<u64>()),
    )
        .prop_map(|(max_power_w, max_area_mm2, max_scenario_drops, max_unrecovered_faults)| {
            Constraints { max_power_w, max_area_mm2, max_scenario_drops, max_unrecovered_faults }
        })
}

fn assert_identity(request: &ApiRequest) -> Result<(), TestCaseError> {
    let line = request.to_json();
    let parsed = match ApiRequest::from_json(&line) {
        Ok(parsed) => parsed,
        Err(e) => return Err(TestCaseError::fail(format!("own serialisation rejected: {e}\n{line}"))),
    };
    prop_assert_eq!(&parsed, request, "{}", line);
    prop_assert_eq!(parsed.to_json(), line, "re-serialisation drifted");
    Ok(())
}

proptest! {
    #[test]
    fn random_eval_requests_round_trip(
        config in arb_config(),
        rate in arb_rate(),
        entries in 1usize..=65536,
        workload in arb_workload(),
        faults in arb_faults(),
    ) {
        let mut spec = EvalSpec::new(config);
        spec.rate = rate;
        spec.entries = entries;
        spec.workload = workload;
        spec.faults = faults;
        assert_identity(&ApiRequest::Eval(spec))?;
    }

    #[test]
    fn random_sweep_requests_round_trip(
        buses in proptest::collection::vec(1u8..=8, 1..4),
        replication in proptest::collection::vec(1u8..=4, 1..4),
        kinds in proptest::collection::vec(arb_kind(), 1..5),
        entries in 1usize..=4096,
        workload in arb_workload(),
        faults in arb_faults(),
        rate in arb_rate(),
        constraints in arb_constraints(),
    ) {
        let spec =
            SweepSpec { buses, replication, kinds, entries, workload, faults, ..SweepSpec::default() };
        assert_identity(&ApiRequest::Sweep { spec, rate, constraints })?;
    }

    #[test]
    fn arbitrary_input_never_panics_the_strict_parsers(line in ".*") {
        // Any outcome is fine; aborting the daemon is not.
        let _ = ApiRequest::from_json(&line);
        let _ = ApiResponse::from_json(&line);
    }

    #[test]
    fn mutated_valid_requests_never_panic(
        config in arb_config(),
        rate in arb_rate(),
        cut in any::<Index>(),
        junk in "[ \t{}\\[\\]:,\"0-9a-z]{0,12}",
    ) {
        // Splice junk into a real request line at a random point: the
        // parser must answer with a structured error or a parse, never a
        // panic.
        let mut spec = EvalSpec::new(config);
        spec.rate = rate;
        let line = ApiRequest::Eval(spec).to_json();
        // The serialised form is pure ASCII, so any split point is a
        // char boundary.
        let at = cut.index(line.len() + 1);
        let mutated = format!("{}{junk}{}", &line[..at], &line[at..]);
        let _ = ApiRequest::from_json(&mutated);
    }
}
