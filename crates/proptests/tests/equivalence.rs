//! Property test: the cycle-accurate microcoded router and the behavioural
//! reference router make identical forwarding decisions — for every routing
//! table organisation, on every paper configuration, over random tables and
//! random traffic.
//!
//! This is the test that ties the whole stack together: packet codecs,
//! memory layout, microcode generation, the optimizer, the scheduler and
//! the simulator all have to agree with fifty lines of plain Rust.

#![cfg(feature = "proptest")]

use proptest::prelude::*;

use taco::ipv6::{Datagram, Ipv6Address, NextHeader};
use taco::isa::MachineConfig;
use taco::router::cycle::CycleRouter;
use taco::router::microcode::MicrocodeOptions;
use taco::router::reference::{ForwardDecision, ReferenceRouter};
use taco::router::TrafficGen;
use taco::routing::{
    BalancedTreeTable, CamTable, PortId, Route, SequentialTable, TableKind,
};

/// What the reference router would do, reduced to the fast path's view:
/// `Some(port)` = forward, `None` = drop.
fn reference_decisions(routes: &[Route], traffic: &[Datagram]) -> Vec<Option<PortId>> {
    let table = SequentialTable::from_routes(routes.iter().copied());
    let mut reference = ReferenceRouter::new(table, vec![]);
    traffic
        .iter()
        .map(|d| match reference.process(PortId(0), &d.to_bytes()) {
            ForwardDecision::Forward { out_port, .. } => Some(out_port),
            _ => None,
        })
        .collect()
}

/// What the microcoded router does on `config` with table organisation
/// `kind`.
fn microcoded_decisions(
    kind: TableKind,
    config: &MachineConfig,
    routes: &[Route],
    traffic: &[Datagram],
) -> Vec<Option<PortId>> {
    let opts = MicrocodeOptions::default();
    let mut router = match kind {
        TableKind::Sequential => {
            let t = SequentialTable::from_routes(routes.iter().copied());
            CycleRouter::sequential(config, &t, &opts)
        }
        TableKind::BalancedTree => {
            let t = BalancedTreeTable::from_routes(routes.iter().copied());
            CycleRouter::tree(config, &t, &opts)
        }
        TableKind::Trie => {
            let t = taco::routing::TrieTable::from_routes(routes.iter().copied());
            CycleRouter::trie(config, &t, &opts)
        }
        TableKind::Cam => {
            let t = CamTable::from_routes(routes.iter().copied());
            CycleRouter::cam(config, t, 3, &opts)
        }
    }
    .expect("microcode validates");

    for d in traffic {
        router.enqueue(PortId(0), d).expect("traffic fits the buffer");
    }
    router.run(200_000_000).expect("batch run halts");

    // Reassemble per-datagram decisions: outputs arrive in order, identified
    // by memory pointer = enqueue order.
    let forwarded = router.forwarded();
    let mut decisions = vec![None; traffic.len()];
    let out_ports: std::collections::BTreeMap<Vec<u8>, PortId> = forwarded
        .iter()
        .map(|(p, d)| {
            // Undo the hop-limit decrement so the key matches the input.
            let mut undone = d.clone();
            let mut hdr_bytes = undone.to_bytes();
            hdr_bytes[7] += 1;
            undone = Datagram::parse(&hdr_bytes).expect("reparse");
            (undone.to_bytes(), *p)
        })
        .collect();
    for (i, d) in traffic.iter().enumerate() {
        if let Some(p) = out_ports.get(&d.to_bytes()) {
            decisions[i] = Some(*p);
        }
    }
    decisions
}

/// Deterministic but varied input: tables + traffic from a seed.
fn scenario(seed: u64, table_size: usize, k: usize) -> (Vec<Route>, Vec<Datagram>) {
    let mut gen = TrafficGen::new(seed, 4);
    let routes = gen.table(table_size, seed % 2 == 0);
    let mut traffic: Vec<Datagram> = gen
        .forwarding_workload(&routes, k, 0.7, 24)
        .into_iter()
        .map(|(_, d)| d)
        .collect();
    // Ensure each datagram is unique so output matching by bytes is exact.
    for (i, d) in traffic.iter_mut().enumerate() {
        let mut bytes = d.to_bytes();
        bytes[2] = (i & 0xff) as u8; // perturb the flow label
        *d = Datagram::parse(&bytes).expect("reparse");
    }
    (routes, traffic)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn microcode_matches_reference(
        seed in any::<u64>(),
        table_size in 1usize..24,
        kind_sel in 0usize..4,
        config_sel in 0usize..3,
    ) {
        let kind = [
            TableKind::Sequential,
            TableKind::BalancedTree,
            TableKind::Cam,
            TableKind::Trie,
        ][kind_sel];
        let config = [
            MachineConfig::one_bus_one_fu(),
            MachineConfig::three_bus_one_fu(),
            MachineConfig::three_bus_three_fu(),
        ][config_sel].clone();

        let (routes, traffic) = scenario(seed, table_size, 12);
        let expect = reference_decisions(&routes, &traffic);
        let got = microcoded_decisions(kind, &config, &routes, &traffic);
        prop_assert_eq!(&got, &expect,
            "{} on {} disagreed with the reference (seed {})", kind, config, seed);
    }
}

#[test]
fn hop_limit_edge_cases_match_reference() {
    let routes = vec![Route::new(
        "2001:db8::/32".parse().expect("valid"),
        "fe80::1".parse().expect("valid"),
        PortId(2),
        1,
    )];
    let dst: Ipv6Address = "2001:db8::7".parse().expect("valid");
    let traffic: Vec<Datagram> = [0u8, 1, 2, 255]
        .iter()
        .map(|&hl| {
            Datagram::builder("2001:db8:9::1".parse().expect("valid"), dst)
                .hop_limit(hl)
                .payload(NextHeader::Udp, vec![hl; 4])
                .build()
        })
        .collect();
    let expect = reference_decisions(&routes, &traffic);
    assert_eq!(expect, vec![None, None, Some(PortId(2)), Some(PortId(2))]);
    for kind in [TableKind::Sequential, TableKind::BalancedTree, TableKind::Cam, TableKind::Trie] {
        let got = microcoded_decisions(kind, &MachineConfig::three_bus_one_fu(), &routes, &traffic);
        assert_eq!(got, expect, "{kind}");
    }
}

#[test]
fn extension_headers_ride_through_the_fast_path() {
    // The paper stores whole datagrams in memory precisely because of
    // extension headers; the fast path reads the destination at its fixed
    // header offset and must forward the chain untouched.
    use taco::ipv6::exthdr::{FragmentHeader, OptionsHeader, RoutingHeader};
    use taco::ipv6::ExtensionHeader;

    let routes = vec![Route::new(
        "2001:db8::/32".parse().expect("valid"),
        "fe80::1".parse().expect("valid"),
        PortId(3),
        1,
    )];
    let d = Datagram::builder(
        "2001:db8:9::1".parse().expect("valid"),
        "2001:db8::42".parse().expect("valid"),
    )
    .hop_limit(9)
    .extension(ExtensionHeader::HopByHop(OptionsHeader::new()))
    .extension(ExtensionHeader::Routing(RoutingHeader {
        routing_type: 0,
        segments_left: 1,
        addresses: vec![[7u8; 16]],
    }))
    .extension(ExtensionHeader::Fragment(FragmentHeader { offset: 4, more: true, id: 99 }))
    .payload(NextHeader::Udp, vec![0xab; 32])
    .build();

    for kind in [TableKind::Sequential, TableKind::BalancedTree, TableKind::Cam, TableKind::Trie] {
        let got = microcoded_decisions(
            kind,
            &MachineConfig::three_bus_one_fu(),
            &routes,
            std::slice::from_ref(&d),
        );
        assert_eq!(got, vec![Some(PortId(3))], "{kind}");
    }

    // And the chain itself survives byte-for-byte (hop limit aside).
    let table = SequentialTable::from_routes(routes.iter().copied());
    let mut router = CycleRouter::sequential(
        &MachineConfig::three_bus_one_fu(),
        &table,
        &MicrocodeOptions::default(),
    )
    .expect("valid");
    router.enqueue(PortId(0), &d).expect("fits");
    router.run(10_000_000).expect("halts");
    let out = router.forwarded();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].1.extensions(), d.extensions());
    assert_eq!(out[0].1.payload(), d.payload());
    assert_eq!(out[0].1.header().hop_limit, 8);
}

#[test]
fn forwarded_datagrams_are_intact_except_hop_limit() {
    let mut gen = TrafficGen::new(99, 4);
    let routes = gen.table(8, true);
    let table = SequentialTable::from_routes(routes.iter().copied());
    let d = gen.datagram(gen.clone().addr_in(&routes[0].prefix()), 40);
    let mut router = CycleRouter::sequential(
        &MachineConfig::three_bus_three_fu(),
        &table,
        &MicrocodeOptions::default(),
    )
    .expect("valid");
    router.enqueue(PortId(1), &d).expect("fits");
    router.run(10_000_000).expect("halts");
    let out = router.forwarded();
    assert_eq!(out.len(), 1);
    let fwd = &out[0].1;
    assert_eq!(fwd.header().hop_limit, d.header().hop_limit - 1);
    assert_eq!(fwd.header().src, d.header().src);
    assert_eq!(fwd.header().dst, d.header().dst);
    assert_eq!(fwd.payload(), d.payload());
    assert_eq!(fwd.header().flow_label, d.header().flow_label);
}
