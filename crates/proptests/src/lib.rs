//! Carrier package for the property-test suites (`tests/`, behind the
//! `proptest` feature) and the Criterion micro-benches (`benches/`).
//!
//! This package is excluded from the workspace because its dependencies
//! come from the registry and the workspace must resolve offline; see the
//! manifest header and `scripts/verify.sh`.
