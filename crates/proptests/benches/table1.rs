//! Criterion bench over the Table 1 evaluation pipeline: one measurement
//! per paper cell (reduced table size to keep wall time sane — the printed
//! table itself comes from the `table1` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use taco_core::{ArchConfig, EvalRequest, LineRate};
use taco_routing::TableKind;

fn bench_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_cell");
    group.sample_size(10);
    for kind in TableKind::PAPER_KINDS {
        for config in [
            ArchConfig::one_bus_one_fu(kind),
            ArchConfig::three_bus_one_fu(kind),
            ArchConfig::three_bus_three_fu(kind),
        ] {
            group.bench_with_input(
                BenchmarkId::from_parameter(config.label()),
                &config,
                |b, config| {
                    b.iter(|| {
                        EvalRequest::new(config.clone()).rate(LineRate::TEN_GBE).entries(16).run()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cells);
criterion_main!(benches);
