//! Criterion bench of the behavioural longest-prefix-match engines across
//! table sizes — the host-speed counterpart of the `scaling` binary's
//! cycle-accurate sweep, and the crossover evidence for the paper's claim
//! that table organisation dominates router performance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use taco_core::benchmark_routes;
use taco_routing::{
    BalancedTreeTable, CamTable, LpmTable, PatriciaTable, SequentialTable, TrieTable,
};

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("lpm_lookup");
    for &n in &[16usize, 64, 256] {
        let routes = benchmark_routes(n);
        let probes: Vec<_> = routes.iter().map(|r| r.prefix().addr()).collect();
        let seq = SequentialTable::from_routes(routes.iter().copied());
        let tree = BalancedTreeTable::from_routes(routes.iter().copied());
        let cam = CamTable::from_routes(routes.iter().copied());
        let trie = TrieTable::from_routes(routes.iter().copied());
        let pat = PatriciaTable::from_routes(routes.iter().copied());

        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| probes.iter().map(|a| seq.lookup(a).steps()).sum::<u32>())
        });
        group.bench_with_input(BenchmarkId::new("balanced_tree", n), &n, |b, _| {
            b.iter(|| probes.iter().map(|a| tree.lookup(a).steps()).sum::<u32>())
        });
        group.bench_with_input(BenchmarkId::new("cam", n), &n, |b, _| {
            b.iter(|| probes.iter().map(|a| cam.lookup(a).steps()).sum::<u32>())
        });
        group.bench_with_input(BenchmarkId::new("trie", n), &n, |b, _| {
            b.iter(|| probes.iter().map(|a| trie.lookup(a).steps()).sum::<u32>())
        });
        group.bench_with_input(BenchmarkId::new("patricia", n), &n, |b, _| {
            b.iter(|| probes.iter().map(|a| pat.lookup(a).steps()).sum::<u32>())
        });
    }
    group.finish();
}

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_update");
    group.sample_size(20);
    let routes = benchmark_routes(100);
    let extra = benchmark_routes(101)[100];
    // The paper: tree "insertion and deletion operations become much more
    // complex" — measure exactly that asymmetry.
    group.bench_function("sequential_insert_remove", |b| {
        let mut t = SequentialTable::from_routes(routes.iter().copied());
        b.iter(|| {
            t.insert(extra);
            t.remove(&extra.prefix());
        })
    });
    group.bench_function("balanced_tree_insert_remove", |b| {
        let mut t = BalancedTreeTable::from_routes(routes.iter().copied());
        b.iter(|| {
            t.insert(extra);
            t.remove(&extra.prefix());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lookup, bench_update);
criterion_main!(benches);
