//! Criterion bench of raw simulator throughput: host time per simulated
//! cycle — the quantity behind the paper's "fast turn-around time" claim
//! (how quickly one architecture instance can be evaluated).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use taco_ipv6::{Datagram, NextHeader};
use taco_isa::{asm, MachineConfig};
use taco_router::cycle::CycleRouter;
use taco_router::microcode::MicrocodeOptions;
use taco_routing::{PortId, SequentialTable};
use taco_sim::Processor;

fn counting_loop(iters: u32) -> Processor {
    let mut prog = asm::parse(&format!(
        "0 -> cnt0.tset | {iters} -> cnt0.stop\nloop: 1 -> cnt0.tinc\n!cnt0.done @loop -> nc0.pc\n"
    ))
    .expect("valid asm");
    prog.resolve_labels().expect("labels defined");
    Processor::new(MachineConfig::three_bus_one_fu(), prog).expect("valid program")
}

fn bench_raw_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_cycles");
    let iters = 10_000u32;
    group.throughput(Throughput::Elements(u64::from(iters) * 2));
    group.bench_function("counting_loop", |b| {
        b.iter(|| {
            let mut cpu = counting_loop(iters);
            cpu.run(u64::from(iters) * 3).expect("loop terminates")
        })
    });
    group.finish();
}

fn bench_forwarding(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_forwarding");
    group.sample_size(20);
    let routes = taco_core::benchmark_routes(64);
    let table = SequentialTable::from_routes(routes.iter().copied());
    let dgram = Datagram::builder(
        "2001:db8:ffff::1".parse().expect("valid"),
        routes[32].prefix().addr(),
    )
    .hop_limit(64)
    .payload(NextHeader::Udp, vec![0u8; 64])
    .build();
    for buses in [1u8, 3] {
        group.bench_with_input(BenchmarkId::new("seq64", format!("{buses}bus")), &buses, |b, &buses| {
            b.iter(|| {
                let mut r = CycleRouter::sequential(
                    &MachineConfig::new(buses),
                    &table,
                    &MicrocodeOptions::default(),
                )
                .expect("valid microcode");
                r.enqueue(PortId(0), &dgram).expect("fits");
                r.run(10_000_000).expect("terminates")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_raw_cycles, bench_forwarding);
criterion_main!(benches);
