//! Criterion bench of the Fig. 3 code-optimization pipeline: move-level
//! optimization plus list scheduling onto 1- and 3-bus machines, for both
//! the tiny Fig. 3 expression and the real forwarding microcode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use taco_isa::{opt, schedule, CodeBuilder, FuKind, MachineConfig, MoveSeq};
use taco_router::microcode::{sequential_program, tree_program, MicrocodeOptions};

/// The paper's Fig. 3 expression `a = (b*2 + c)/4`.
fn fig3() -> MoveSeq {
    let mut b = CodeBuilder::new();
    let shl = b.alloc(FuKind::Shifter);
    let add = b.alloc(FuKind::Counter);
    b.mv(1u32, shl.port("amount"));
    b.mv(b.reg(0), shl.port("tshl"));
    b.mv(shl.port("r"), add.port("tset"));
    b.mv(b.reg(1), add.port("tadd"));
    b.mv(2u32, shl.port("amount"));
    b.mv(add.port("r"), shl.port("tshr"));
    b.mv(shl.port("r"), b.reg(2));
    b.finish()
}

fn bench_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule");
    let subjects: Vec<(&str, MoveSeq)> = vec![
        ("fig3", fig3()),
        ("seq_fwd_100", sequential_program(100, &MicrocodeOptions::default())),
        ("tree_fwd", tree_program(&MicrocodeOptions::default())),
    ];
    for (name, seq) in &subjects {
        for buses in [1u8, 3] {
            let config = MachineConfig::new(buses);
            group.bench_with_input(
                BenchmarkId::new(*name, format!("{buses}bus")),
                &config,
                |b, config| b.iter(|| schedule(seq, config)),
            );
        }
    }
    group.finish();
}

fn bench_optimize(c: &mut Criterion) {
    c.bench_function("optimize_seq_fwd_100", |b| {
        let seq = sequential_program(100, &MicrocodeOptions::default());
        b.iter(|| {
            let mut s = seq.clone();
            opt::optimize(&mut s)
        })
    });
}

criterion_group!(benches, bench_schedule, bench_optimize);
criterion_main!(benches);
