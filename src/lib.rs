//! Facade crate for the TACO IPv6 protocol-processor evaluation framework —
//! a reproduction of *"Fast Evaluation of Protocol Processor Architectures
//! for IPv6 Routing"* (Lilius, Truscan, Virtanen — DATE 2003).
//!
//! Re-exports every sub-crate under a stable module name so applications can
//! depend on a single crate:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`ipv6`] | `taco-ipv6` | IPv6 packets, prefixes, RIPng codec |
//! | [`routing`] | `taco-routing` | longest-prefix-match engines + RIPng engine |
//! | [`isa`] | `taco-isa` | TTA ISA, assembler, code optimizer |
//! | [`sim`] | `taco-sim` | cycle-accurate TACO simulator |
//! | [`estimate`] | `taco-estimate` | area/power/feasibility estimation |
//! | [`router`] | `taco-router` | the IPv6 router application |
//! | [`eval`] | `taco-core` | architecture evaluation + design-space exploration |
//! | [`served`] | `taco-served` | batch evaluation daemon behind the versioned wire API |
//!
//! # Examples
//!
//! Reproduce one cell of the paper's Table 1 — the CAM-based router on the
//! default three-bus configuration:
//!
//! ```
//! use taco::eval::{ArchConfig, EvalRequest, LineRate, RoutingTableKind};
//!
//! let config = ArchConfig::three_bus_one_fu(RoutingTableKind::Cam);
//! let report = EvalRequest::new(config).rate(LineRate::TEN_GBE).entries(100).run();
//! assert!(report.required_frequency_hz > 0.0);
//! ```

pub use taco_core as eval;
pub use taco_estimate as estimate;
pub use taco_ipv6 as ipv6;
pub use taco_isa as isa;
pub use taco_router as router;
pub use taco_routing as routing;
pub use taco_served as served;
pub use taco_sim as sim;
