//! Three routers in a line topology discover each other's networks over
//! RIPng — "the router builds up the Routing Table by listening for
//! specific datagrams broadcasted by the adjacent routers".
//!
//! Topology (port 1 of each router wired to port 0 of the next):
//!
//! ```text
//!   net A ── R0 ══ R1 ══ R2 ── net C
//!                  │
//!                net B
//! ```
//!
//! ```text
//! cargo run --example ripng_convergence
//! ```

use taco::router::Router;
use taco::routing::ripng::InterfaceConfig;
use taco::routing::{PortId, SequentialTable, SimTime};

fn router(name: u16, connected: &str) -> Router<SequentialTable> {
    let interfaces = vec![
        InterfaceConfig::new(
            PortId(0),
            format!("fe80::{}:0", name + 1).parse().expect("valid"),
            vec![connected.parse().expect("valid prefix")],
        ),
        InterfaceConfig::new(
            PortId(1),
            format!("fe80::{}:1", name + 1).parse().expect("valid"),
            vec![],
        ),
    ];
    Router::new(interfaces, SequentialTable::new())
}

/// Moves transmitted datagrams from one router port onto another's input.
fn wire(a: &mut Router<SequentialTable>, pa: PortId, b: &mut Router<SequentialTable>, pb: PortId) {
    for d in a.card_mut(pa).drain_transmitted() {
        b.card_mut(pb).receive(d);
    }
}

fn main() {
    let mut r0 = router(0, "2001:db8:a::/48");
    let mut r1 = router(1, "2001:db8:b::/48");
    let mut r2 = router(2, "2001:db8:c::/48");

    for step in 0..6u64 {
        let now = SimTime::from_secs(step * 5);
        r0.tick(now);
        r1.tick(now);
        r2.tick(now);
        // R0.p1 <-> R1.p0 and R1.p1 <-> R2.p0; stub networks are drained.
        wire(&mut r0, PortId(1), &mut r1, PortId(0));
        wire(&mut r1, PortId(0), &mut r0, PortId(1));
        wire(&mut r1, PortId(1), &mut r2, PortId(0));
        wire(&mut r2, PortId(0), &mut r1, PortId(1));
        r0.card_mut(PortId(0)).drain_transmitted();
        r2.card_mut(PortId(0)).drain_transmitted();

        println!("t = {now}:");
        for (name, r) in [("R0", &r0), ("R1", &r1), ("R2", &r2)] {
            let mut routes: Vec<String> = r.ripng().routes().map(|x| x.to_string()).collect();
            routes.sort();
            println!("  {name}: {}", routes.join(" | "));
        }
        println!();
    }

    // After convergence every router knows all three networks; R0 reaches
    // net C through R1 at metric 3 (two hops past the connected metric 1).
    let r0_routes: Vec<_> = r0.ripng().routes().copied().collect();
    assert_eq!(r0_routes.len(), 3, "R0 should know nets A, B and C");
    let to_c = r0_routes
        .iter()
        .find(|r| r.prefix() == "2001:db8:c::/48".parse().expect("valid"))
        .expect("route to net C");
    println!("converged: R0 reaches net C via {} (metric {})", to_c.next_hop(), to_c.metric());
    assert_eq!(to_c.metric(), 3);
    println!(
        "RIPng stats at R1: {} periodic updates, {} triggered, {} responses processed",
        r1.ripng().stats().periodic_updates_sent,
        r1.ripng().stats().triggered_updates_sent,
        r1.ripng().stats().responses_received,
    );
}
