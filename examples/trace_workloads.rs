//! The three 3BUS organisations under the two new workloads: the
//! `mixed-plane` builtin (alternating control storms and forwarding
//! bursts) and an explicit binary flow trace generated with the
//! empirical IPv6 traffic shapes (heavy-tailed flow lengths, trimodal
//! packet sizes, prefix-local destination popularity).
//!
//! The printed table is the source of the "Mixed control/data plane and
//! trace replay" section of EXPERIMENTS.md — rerun this example to
//! regenerate those numbers:
//!
//! ```text
//! cargo run --release --example trace_workloads
//! ```
//!
//! Every figure is deterministic: the workloads are seeded, the metrics
//! are all-integer, and the trace rows replay the exact same records on
//! each organisation (one `Arc<FlowTrace>` shared across cells).

use std::sync::Arc;

use taco::eval::{ArchConfig, EvalRequest, RoutingTableKind, TraceGen, Workload};

/// Generator parameters for the reference trace.  Documented in
/// EXPERIMENTS.md next to the table these rows feed.
const TRACE_SEED: u64 = 7;
const TRACE_TICKS: u32 = 400;
const TRACE_FLOWS: u32 = 2000;
const TABLE_ENTRIES: u32 = 100;

fn main() {
    let kinds = [
        ("sequential 3BUS/1FU", RoutingTableKind::Sequential),
        ("balanced tree 3BUS/1FU", RoutingTableKind::BalancedTree),
        ("CAM 3BUS/1FU", RoutingTableKind::Cam),
    ];
    let trace = Arc::new(TraceGen::generate(TRACE_SEED, TRACE_TICKS, TRACE_FLOWS, TABLE_ENTRIES));
    println!(
        "reference trace: seed {TRACE_SEED}, {TRACE_TICKS} ticks, {TRACE_FLOWS} flows, \
         {} records, digest {:#018x}",
        trace.records().len(),
        trace.digest()
    );
    println!();

    println!("| cell | workload | cycles | offered | forwarded | dropped | max queue | mean latency (ticks) | table updates |");
    println!("|---|---|---|---|---|---|---|---|---|");
    for (label, kind) in kinds {
        let config = ArchConfig::three_bus_one_fu(kind);
        let mixed = EvalRequest::new(config.clone())
            .entries(TABLE_ENTRIES as usize)
            .workload(Workload::mixed_plane())
            .run();
        print_row(label, "mixed-plane", &mixed);
        let replay = EvalRequest::new(config)
            .entries(TABLE_ENTRIES as usize)
            .flow_trace(Arc::clone(&trace))
            .run();
        print_row(label, "trace", &replay);
        if let Some(flows) = replay.scenario.as_ref().and_then(|s| s.flows.as_ref()) {
            eprintln!(
                "  {label}: {} flows, {} packets (sizes {} small / {} medium / {} large, \
                 longest flow {} packets)",
                flows.flows,
                flows.packets,
                flows.small,
                flows.medium,
                flows.large,
                flows.max_flow_len
            );
        }
    }
}

fn print_row(label: &str, workload: &str, report: &taco::eval::EvalReport) {
    let s = report.scenario.as_ref().expect("scenario workload attached");
    println!(
        "| {label} | {workload} | {:.0} | {} | {} | {} | {} | {:.1} | {} |",
        report.cycles_per_datagram,
        s.offered,
        s.forwarded,
        s.dropped(),
        s.max_queue_depth,
        s.latency.mean_milli() as f64 / 1000.0,
        s.table_updates,
    );
}
