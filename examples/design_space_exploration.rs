//! The paper's future-work tool, implemented: automatic design-space
//! exploration.  Sweeps a small architecture grid (to keep the example
//! fast — the `dse` bench binary runs the full one), evaluates each
//! instance with the simulate-then-estimate pipeline, and suggests the
//! lowest-power configuration that satisfies the constraints.
//!
//! ```text
//! cargo run --release --example design_space_exploration
//! ```

use taco::eval::{explore, table1, Constraints, LineRate, SweepSpec};
use taco::routing::TableKind;

fn main() {
    let spec = SweepSpec {
        buses: vec![1, 3],
        replication: vec![1, 3],
        kinds: vec![TableKind::BalancedTree, TableKind::Cam],
        entries: 32,
        workload: None,
        faults: None,
        trace: None,
        ..SweepSpec::default()
    };
    let constraints =
        Constraints { max_power_w: 0.5, max_area_mm2: 10.0, ..Constraints::default() };
    let rate = LineRate::TEN_GBE;

    println!(
        "sweeping {} instances against {rate}",
        spec.buses.len() * spec.replication.len() * spec.kinds.len()
    );
    println!("constraints: <= {} W, <= {} mm2", constraints.max_power_w, constraints.max_area_mm2);
    println!();

    let ex = explore(&spec, rate, &constraints);
    print!("{}", table1::render(&ex.all));
    println!();

    match ex.best() {
        Some(best) => {
            let e = best.estimate.feasible().expect("best is feasible");
            println!(
                "suggested configuration: {} at {} ({:.2} mm2, {:.3} W)",
                best.config.label(),
                table1::format_frequency(best.required_frequency_hz),
                e.area_mm2,
                e.power_w
            );
        }
        None => println!("no configuration satisfies the constraints"),
    }
}
