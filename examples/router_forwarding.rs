//! The paper's Fig. 1 router in action, at two levels of abstraction:
//!
//! 1. the *behavioural* router (line cards + forwarding core + RIPng)
//!    pushing a synthetic workload between four ports;
//! 2. the *cycle-accurate* router forwarding the same datagrams through the
//!    TACO microcode on each of the paper's three architecture
//!    configurations, reporting cycles per datagram and bus utilisation.
//!
//! ```text
//! cargo run --release --example router_forwarding
//! ```

use taco::ipv6::Ipv6Prefix;
use taco::isa::MachineConfig;
use taco::router::cycle::CycleRouter;
use taco::router::microcode::MicrocodeOptions;
use taco::router::{Router, TrafficGen};
use taco::routing::ripng::InterfaceConfig;
use taco::routing::{PortId, SequentialTable, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    behavioural_router()?;
    cycle_accurate_router()?;
    Ok(())
}

/// Four line cards around a forwarding core, as in Fig. 1.
fn behavioural_router() -> Result<(), Box<dyn std::error::Error>> {
    println!("== behavioural router: 4 line cards, RIPng control plane ==");
    let interfaces: Vec<InterfaceConfig> = (0..4u16)
        .map(|i| {
            let prefix: Ipv6Prefix = format!("2001:db8:{i}::/48").parse().expect("valid prefix");
            InterfaceConfig::new(
                PortId(i),
                format!("fe80::{}", i + 1).parse().expect("valid address"),
                vec![prefix],
            )
        })
        .collect();
    let mut router = Router::new(interfaces, SequentialTable::new());

    // 60 datagrams between the connected networks, plus strays.
    let mut gen = TrafficGen::new(42, 4);
    let routes: Vec<_> = router.ripng().routes().copied().collect();
    for (port, dgram) in gen.forwarding_workload(&routes, 60, 0.8, 64) {
        router.card_mut(port).receive(dgram);
    }
    let report = router.tick(SimTime::ZERO);
    println!(
        "tick: {} forwarded, {} dropped, {} delivered, {} RIPng updates sent",
        report.forwarded, report.dropped, report.delivered, report.ripng_sent
    );
    for port in 0..4u16 {
        let sent = router.card(PortId(port)).transmitted().len();
        println!("  port{port}: {sent} datagrams transmitted");
    }
    println!();
    Ok(())
}

/// The same forwarding job, cycle-accurately, across the paper's three
/// configurations.
fn cycle_accurate_router() -> Result<(), Box<dyn std::error::Error>> {
    println!("== cycle-accurate router: TACO microcode, sequential table ==");
    let mut gen = TrafficGen::new(43, 4);
    let routes = gen.table(32, true);
    let table = SequentialTable::from_routes(routes.iter().copied());
    let workload = gen.forwarding_workload(&routes, 16, 1.0, 64);

    for config in [
        MachineConfig::one_bus_one_fu(),
        MachineConfig::three_bus_one_fu(),
        MachineConfig::three_bus_three_fu(),
    ] {
        let mut router = CycleRouter::sequential(&config, &table, &MicrocodeOptions::default())?;
        for (port, dgram) in &workload {
            router.enqueue(*port, dgram)?;
        }
        let stats = router.run(50_000_000)?;
        let out = router.forwarded();
        println!(
            "  {:<20} {:>6} cycles for {} datagrams ({:>5.0} cycles each), bus util {:>3.0}%",
            config.label(),
            stats.cycles,
            out.len(),
            stats.cycles as f64 / out.len() as f64,
            stats.bus_utilization() * 100.0
        );
        // The paper's per-module utilization data, busiest units first.
        let mut modules: Vec<_> = stats.fu_instance_triggers.iter().collect();
        modules.sort_by_key(|(_, n)| std::cmp::Reverse(**n));
        let line: Vec<String> = modules
            .iter()
            .take(5)
            .map(|(fu, _)| format!("{fu} {:.0}%", stats.module_utilization(**fu) * 100.0))
            .collect();
        println!("    module utilization: {}", line.join(", "));
    }
    Ok(())
}
