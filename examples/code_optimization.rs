//! Reproduction of the paper's Fig. 3: the TACO code-optimization process.
//!
//! The expression `a = (b*2 + c)/4` is generated as naive one-move-per-
//! instruction TTA code, then bypassed/dead-move-eliminated and list-
//! scheduled onto machines with one, two and three buses — showing how the
//! same source shrinks as the interconnection network grows.
//!
//! ```text
//! cargo run --example code_optimization
//! ```

use taco::isa::{opt, schedule, CodeBuilder, FuKind, MachineConfig, Program};

fn main() {
    // a = (b*2 + c) / 4   with b in r0, c in r1, a in r2.
    // The shifter does *2 and /4 ("a Shifter can also be used for
    // arithmetical multiplication by 2"), the counter adds.
    let mut b = CodeBuilder::new();
    let shl = b.alloc(FuKind::Shifter);
    let add = b.alloc(FuKind::Counter);
    // A deliberately naive register dance, as a simple compiler would emit.
    b.mv(1u32, shl.port("amount"));
    b.mv(b.reg(0), shl.port("tshl")); // R5 = b * 2
    b.mv(shl.port("r"), b.reg(5));
    b.mv(b.reg(5), add.port("tset"));
    b.mv(b.reg(1), add.port("tadd")); // R6 = R5 + c
    b.mv(add.port("r"), b.reg(6));
    b.mv(2u32, shl.port("amount"));
    b.mv(b.reg(6), shl.port("tshr")); // R7 = R6 / 4
    b.mv(shl.port("r"), b.reg(7));
    b.mv(b.reg(7), b.reg(2)); // a = R7
    let mut seq = b.finish();

    println!("=== non-optimized TACO code ({} moves) ===", seq.len());
    println!("{}", Program::from_moves(&seq, 1));

    // The program's ABI: only r2 (the variable `a`) is live at the end.
    let a_reg = CodeBuilder::new().reg(2);
    let removed = opt::optimize_with(&mut seq, |r| r == a_reg);
    println!("=== after bypassing + dead-move elimination ({removed} moves removed) ===");
    println!("{}", Program::from_moves(&seq, 1));

    for buses in 1..=3u8 {
        let config = MachineConfig::new(buses);
        let prog = schedule(&seq, &config);
        println!(
            "=== scheduled for {buses} bus(es): {} cycles, {:.0}% static bus utilisation ===",
            prog.instructions.len(),
            prog.static_bus_utilization() * 100.0
        );
        println!("{prog}");
    }

    // Sanity: run the 3-bus version and confirm a = (b*2 + c)/4.
    let config = MachineConfig::new(3);
    let mut prog = schedule(&seq, &config);
    prog.resolve_labels().expect("no labels in straight-line code");
    let mut cpu = taco::sim::Processor::new(config, prog).expect("valid program");
    cpu.set_reg(0, 21); // b
    cpu.set_reg(1, 6); // c
    cpu.run(100).expect("straight-line code halts");
    println!("check: b=21, c=6  ->  a = (21*2 + 6)/4 = {}", cpu.reg(2));
    assert_eq!(cpu.reg(2), 12);
}
