//! Quickstart: instantiate a TACO processor (the paper's Fig. 2
//! architecture), assemble a small transport-triggered program, run it
//! cycle-accurately and read the performance counters.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use taco::isa::{asm, FuKind, MachineConfig};

use taco::sim::Processor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's second configuration: three buses, one FU of each type.
    let config = MachineConfig::three_bus_one_fu();

    println!("TACO architecture instance `{config}` (paper Fig. 2):");
    println!("  {} data buses", config.buses());
    for (kind, count) in config.fu_counts() {
        if kind == FuKind::Nc {
            continue;
        }
        let ports: Vec<&str> = kind.ports().iter().map(|p| p.name).collect();
        println!("  {count} x {kind:<18} ports: {}", ports.join(", "));
    }
    println!("  {} sockets on the interconnection network", config.total_sockets());
    println!();

    // A TTA program is just data moves: compute the Internet checksum of
    // three words with the Checksum FU, counting iterations with the
    // Counter FU.  Writing a trigger register *is* the instruction.
    let source = "\
        ; checksum three words, then park the result in r0
        0 -> csum0.tclr      | 0 -> cnt0.tset   | 3 -> cnt0.stop
        0x45000028 -> csum0.tadd | 1 -> cnt0.tinc
        0x1c468811 -> csum0.tadd | 1 -> cnt0.tinc
        0x0a0c0e10 -> csum0.tadd | 1 -> cnt0.tinc
        csum0.r -> regs0.r0
        ?cnt0.done 1 -> regs0.r1
    ";
    println!("program:\n{source}");

    let mut program = asm::parse(source)?;
    program.resolve_labels().map_err(|l| format!("undefined label {l}"))?;
    println!(
        "{} instruction words, static bus utilisation {:.0}%",
        program.instructions.len(),
        program.static_bus_utilization() * 100.0
    );

    // The paper: "the instruction word of any TTA processor consists mostly
    // of source and destination addresses" — encode the program and see.
    let encoded = taco::isa::encode(&program, &config)?;
    println!("encoded: {encoded}");
    println!();

    let mut cpu = Processor::new(config, program)?;
    let stats = cpu.run(1_000)?;

    println!();
    println!("executed: {stats}");
    println!("checksum (r0) = {:#06x}", cpu.reg(0));
    println!("counter reached its stop value: {}", cpu.reg(1) == 1);
    Ok(())
}
