//! What-if exploration beyond the paper: re-run the Table 1 feasibility
//! analysis on a hypothetical 0.13 µm shrink of the standard-cell library.
//!
//! The paper's conclusions are tied to its "0.18 µm standard cell library
//! that we currently use", whose "upper limit for TACO clock frequencies
//! … is near 1 GHz".  A process shrink moves that ceiling — this example
//! quantifies how many of the NA cells it would rescue, which is precisely
//! the question a design team would have asked in 2003.
//!
//! ```text
//! cargo run --release --example technology_shrink
//! ```

use taco::estimate::{Estimator, Technology};
use taco::eval::{table1, ArchConfig, EvalRequest, LineRate};
use taco::routing::TableKind;

fn main() {
    let entries = 48; // keep the example quick; the structure is size-stable
    let rate = LineRate::TEN_GBE;
    let nodes = [Technology::cmos_180nm(), Technology::cmos_130nm()];

    println!("feasibility of the Table 1 cells at {rate}, {entries} entries:");
    println!();
    println!(
        "{:<38} {:>12} {:>14} {:>14}",
        "configuration", "required", nodes[0].name, nodes[1].name
    );
    for kind in TableKind::PAPER_KINDS {
        for config in [
            ArchConfig::one_bus_one_fu(kind),
            ArchConfig::three_bus_one_fu(kind),
            ArchConfig::three_bus_three_fu(kind),
        ] {
            // One simulation; two estimations at the measured clock.
            let report = EvalRequest::new(config.clone()).rate(rate).entries(entries).run();
            let freq = report.required_frequency_hz;
            let mut row = format!("{:<38} {:>12}", config.label(), table1::format_frequency(freq));
            for tech in &nodes {
                let est = Estimator::new().with_technology(tech.clone());
                let cell = match est.estimate(&config.machine, freq) {
                    e if e.is_feasible() => {
                        let f = e.feasible().expect("checked").power_w;
                        format!("{f:.3} W")
                    }
                    _ => "NA".to_string(),
                };
                row.push_str(&format!(" {cell:>14}"));
            }
            println!("{row}");
        }
    }
    println!();
    println!(
        "the shrink raises the clock ceiling from {:.2} to {:.2} GHz,",
        nodes[0].max_freq_hz / 1e9,
        nodes[1].max_freq_hz / 1e9
    );
    println!("rescuing cells the paper had to mark NA — at lower power per cell");
    println!("(smaller gates, lower supply), which is the expected shrink dividend.");
}
