//! A miniature TACO toolchain driver: assemble a `.tasm` file, optionally
//! re-schedule it for a wider machine, execute it cycle-accurately and dump
//! the architectural state.
//!
//! ```text
//! cargo run --example run_asm -- [path/to/prog.tasm] [buses] [r0=N r1=N …]
//! ```
//!
//! With no arguments it runs the bundled Euclid's-GCD program
//! (`examples/programs/gcd.tasm`) with `r0=91, r1=35` on a 2-bus machine.

use taco::isa::{asm, schedule, validate_schedule, MachineConfig, MoveSeq};
use taco::sim::Processor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let path = args.next().unwrap_or_else(|| "examples/programs/gcd.tasm".to_string());
    let buses: u8 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    let mut regs: Vec<(u8, u32)> = vec![(0, 91), (1, 35)];
    for spec in args {
        if let Some((r, v)) = spec.split_once('=') {
            let r: u8 = r.trim_start_matches('r').parse()?;
            regs.retain(|(i, _)| *i != r);
            regs.push((r, v.parse()?));
        }
    }

    let text = std::fs::read_to_string(&path)?;
    let parsed = asm::parse(&text)?;
    println!("{path}: {} instructions as written", parsed.instructions.len());

    // Treat the parsed program as a linear move sequence and re-schedule it
    // for the requested machine (one move per written slot).
    let mut seq = MoveSeq::new();
    let mut label_at: Vec<(usize, String)> =
        parsed.labels.iter().map(|(n, i)| (*i, n.clone())).collect();
    label_at.sort();
    let mut li = 0;
    for (idx, ins) in parsed.instructions.iter().enumerate() {
        while li < label_at.len() && label_at[li].0 == idx {
            seq.define_label(label_at[li].1.clone());
            li += 1;
        }
        for mv in ins.moves() {
            seq.push(mv.clone());
        }
    }
    while li < label_at.len() {
        seq.define_label(label_at[li].1.clone());
        li += 1;
    }

    let config = MachineConfig::new(buses);
    let mut prog = schedule(&seq, &config);
    prog.resolve_labels().map_err(|l| format!("undefined label {l}"))?;
    validate_schedule(&prog, &config).map_err(|v| format!("invalid schedule: {v:?}"))?;
    println!("scheduled for {config}: {} instructions", prog.instructions.len());
    println!("{}", asm::disassemble(&prog));

    let mut cpu = Processor::new(config, prog)?;
    for &(r, v) in &regs {
        cpu.set_reg(r, v);
        println!("  r{r} = {v}");
    }
    let stats = cpu.run(1_000_000)?;
    println!("ran: {stats}");
    print!("registers:");
    for r in 0..16u8 {
        if cpu.reg(r) != 0 {
            print!("  r{r}={}", cpu.reg(r));
        }
    }
    println!();
    Ok(())
}
