#!/usr/bin/env bash
# Tier-1 verification for the taco workspace.
#
# The main workspace has zero registry dependencies, so the tier-1 gate
# runs fully offline.  When the crates.io registry is reachable we
# additionally build/test the workspace-excluded crates/proptests package
# (proptest property suites + Criterion benches), which is the only place
# registry dependencies are allowed — see the dependency policy in
# README.md.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: format check =="
cargo fmt --check

echo
echo "== tier-1: clippy (warnings are errors) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo
echo "== tier-1: offline build + tests =="
cargo build --release --offline
cargo test -q --offline
cargo test -q --offline --workspace

echo
echo "== tier-1: golden + differential + fault suites (explicit) =="
# Already part of the workspace run above; named here so a failure in the
# pinned Table 1 fixture, the reference-vs-cycle differential (including
# the malformed drop-class agreement test), or the fault-replay
# determinism contract is unmistakable in the log.  Regenerate fixtures
# after an intentional change with:
#   BLESS=1 cargo test -p taco-core --test golden_table1
#   BLESS=1 cargo test -p taco-core --test golden_scaling
cargo test -q --offline -p taco-core --test golden_table1
cargo test -q --offline -p taco-core --test golden_scaling
cargo test -q --offline -p taco-workload --test differential
cargo test -q --offline -p taco-workload --test differential malformed_frames_drop_in_the_same_class_on_both_routers
cargo test -q --offline -p taco-core --test fault_determinism

echo
echo "== tier-1: cross-engine LPM oracle + internet-scale churn suites (explicit) =="
# The randomized five-kind LPM differential oracle (every organisation
# agrees with a reference longest-prefix scan at 10k BGP-shaped prefixes)
# and the 20k-prefix churn regression proving the arena engines' footprint
# high-water mark does not move when the churn window doubles.
cargo test -q --offline -p taco-router --test lpm_oracle
cargo test -q --offline -p taco-workload --test churn_scale

echo
echo "== tier-1: compiled-vs-interpretive step-mode differential (explicit) =="
# Every builtin workload x table kind x fault preset must produce
# byte-identical scenario metrics and simulator counters under both step
# loops, independent of pool worker count.
cargo test -q --offline -p taco-core --test step_mode_differential
cargo test -q --offline -p taco-workload --test differential step_modes_forward_identically_on_every_kind

echo
echo "== tier-1: trace-replay suites (explicit) =="
# The binary flow-trace pipeline: the blessed reference trace and its
# replay metrics (regenerate intentional changes with
#   BLESS=1 cargo test -p taco-workload --test golden_trace
# ), the strict-reader rejection tests, and the byte-identity of
# trace-replay metrics across thread counts and cache hits.
cargo test -q --offline -p taco-workload --test golden_trace
cargo test -q --offline -p taco-workload --lib trace
cargo test -q --offline -p taco-core --test scenario_determinism trace_replay

echo
echo "== tier-1: multicore determinism (explicit) =="
# The coherent multicore layer must be as deterministic as the rest of
# the simulator: a multicore sweep (cores x topology x protocol, with
# coherence traffic from table churn) is byte-identical across worker
# counts and step loops, the MachineSpec wire grid round-trips
# exhaustively, and a single-core request keeps the exact pre-multicore
# bytes.  The release-built `scenarios` bin then re-measures 2- and
# 4-core cells under its hard wall-clock timeout, so a coherence
# livelock fails loudly here instead of hanging a later job.
cargo test -q --offline -p taco-core --test parallel_equivalence \
    multicore_sweep_is_byte_identical_across_threads_and_step_modes
cargo test -q --offline -p taco-core --test api_roundtrip every_machine_spec_combination_round_trips
cargo test -q --offline -p taco-core --test api_roundtrip single_core_machine_specs_keep_the_flat_wire_form
cargo build --release --offline -q -p taco-bench --bin scenarios
if ! timeout 180 ./target/release/scenarios > /dev/null; then
    echo "multicore scenarios smoke FAILED (non-zero exit or 180 s timeout)"
    exit 1
fi
echo "multicore determinism ok"

echo
echo "== tier-1: wire API round-trip + daemon loopback suites (explicit) =="
# The wire schema's identity property over every builtin combination,
# the daemon's golden-fixture/admission/persistence contract, and the
# framing robustness suite (split reads, pipelined frames, oversized
# rejection, mid-request disconnects, v2 sessions, sharded sweeps).
cargo test -q --offline -p taco-core --test api_roundtrip
cargo test -q --offline -p taco-served --test daemon
cargo test -q --offline -p taco-served --test framing

echo
echo "== perf gate: disabled-tracer table1 smoke =="
# The tracer — and the fault-injection hooks, which share its
# monomorphisation discipline — must cost nothing when off.
# `trace --smoke N` runs N
# uncached twelve-cell Table 1 sweeps with the NullTracer and prints the
# wall time in ms; the best of three runs must stay within 5% (+25 ms
# measurement grace) of the checked-in baseline.  The iteration count is
# deliberately low so offline CI pays ~1 s for the gate.
#
#   PERF_GATE=off    skip (e.g. on emulated/shared hardware)
#   PERF_GATE=bless  re-baseline on this machine, then review the diff
baseline_file=scripts/table1-smoke-baseline.txt
if [[ "${PERF_GATE:-on}" == "off" ]]; then
    echo "PERF_GATE=off: skipped"
else
    cargo build --release --offline -q -p taco-bench --bin trace
    best=
    runs=()
    for _ in 1 2 3; do
        ms=$(./target/release/trace --smoke 10)
        runs+=("$ms")
        if [[ -z "$best" || "$ms" -lt "$best" ]]; then
            best=$ms
        fi
    done
    if [[ "${PERF_GATE:-on}" == "bless" ]]; then
        echo "$best" > "$baseline_file"
        echo "blessed new baseline: ${best} ms"
    else
        baseline=$(cat "$baseline_file")
        limit=$((baseline * 105 / 100 + 25))
        if [[ "$best" -gt "$limit" ]]; then
            echo "perf gate FAILED: best-of-3 ${best} ms > limit ${limit} ms (baseline ${baseline} ms)"
            echo "  runs: ${runs[*]} ms; limit = baseline ${baseline} ms + 5% + 25 ms grace"
            echo "  slower machine? PERF_GATE=bless re-baselines; PERF_GATE=off skips"
            exit 1
        fi
        echo "perf gate ok: best-of-3 ${best} ms <= ${limit} ms (baseline ${baseline} ms; runs ${runs[*]} ms)"
    fi

    echo
    echo "== bench artefact: compiled vs interpretive Table 1 cells =="
    # Per-cell wall times for both step loops, written to the checked-in
    # BENCH_table1.json so the measured speedup travels with the repo.
    ./target/release/trace --smoke 10 --bench-json BENCH_table1.json
fi

echo
echo "== churn gate: 100k-prefix bounded-arena smoke =="
# Internet-scale churn end-to-end: the release-built `churn` bin seeds a
# 100k-prefix BGP-shaped table, withdraws/re-advertises routes under live
# traffic, and exits non-zero if the arena engines' footprint high-water
# mark moves when the churn window doubles.  Its --json output is
# all-integer and seeded, hence byte-stable across machines, so it is
# diffed against a committed baseline.  The hard timeout turns a
# scaling regression (or livelock) into a loud failure, not a hung job.
#
#   CHURN_GATE=off    skip (e.g. when iterating on unrelated code)
#   CHURN_GATE=bless  re-baseline after an intentional metrics change
churn_baseline=scripts/churn-smoke-baseline.json
if [[ "${CHURN_GATE:-on}" == "off" ]]; then
    echo "CHURN_GATE=off: skipped"
else
    cargo build --release --offline -q -p taco-bench --bin churn
    if ! churn_actual=$(timeout 300 ./target/release/churn --json); then
        echo "churn gate FAILED (unbounded arena, non-zero exit, or 300 s timeout)"
        exit 1
    fi
    if [[ "${CHURN_GATE:-on}" == "bless" ]]; then
        printf '%s\n' "$churn_actual" > "$churn_baseline"
        echo "blessed new churn baseline: $churn_baseline"
    elif ! diff "$churn_baseline" <(printf '%s\n' "$churn_actual"); then
        echo "churn gate FAILED: 100k-prefix churn metrics drifted from $churn_baseline"
        echo "  intentional change? CHURN_GATE=bless re-baselines, then review the diff"
        exit 1
    else
        echo "churn gate ok: 100k-prefix churn matches $churn_baseline byte for byte"
    fi
fi

echo
echo "== daemon smoke: ephemeral-port serve / status / shutdown =="
# End-to-end over a real socket: boot the daemon on an ephemeral port,
# read the advertised address, make one request, check the response is a
# well-formed v1 line, and shut down cleanly (exit code 0 both sides).
cargo build --release --offline -q -p taco-bench --bin taco-cli
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/taco-cli serve --addr 127.0.0.1:0 > "$smoke_dir/serve.out" &
serve_pid=$!
addr=
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^taco-served listening on //p' "$smoke_dir/serve.out")
    [[ -n "$addr" ]] && break
    sleep 0.1
done
if [[ -z "$addr" ]]; then
    echo "daemon smoke FAILED: serve never advertised its address"
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
status_line=$(./target/release/taco-cli status --addr "$addr")
case "$status_line" in
    '{"api_version":"v1","kind":"status_result",'*) ;;
    *)
        echo "daemon smoke FAILED: malformed status response: $status_line"
        kill "$serve_pid" 2>/dev/null || true
        exit 1
        ;;
esac
./target/release/taco-cli shutdown --addr "$addr" > /dev/null
wait "$serve_pid"
echo "daemon smoke ok: $addr answered $status_line"

echo
echo "== tracegen smoke: generate / write / read / replay =="
# The flow-trace pipeline end to end in release mode: tracegen generates a
# BGP-session-sized trace, round-trips it through disk, replays it, and
# self-checks digests and packet accounting — any failure is a non-zero
# exit.  The hard timeout turns a generator or replay livelock into a
# loud failure instead of a hung CI job.
cargo build --release --offline -q -p taco-bench --bin tracegen
if ! timeout 120 ./target/release/tracegen --seed 7 --ticks 4000 --flows 128 --entries 256; then
    echo "tracegen smoke FAILED (non-zero exit or 120 s timeout)"
    exit 1
fi
echo "tracegen smoke ok"

echo
echo "== loadgen smoke: concurrent sessions + sharded sweep =="
# End-to-end load test of the event loop: loadgen boots its own daemons
# on ephemeral ports, hammers them with concurrent one-shot and
# persistent-session clients, times a cold sharded sweep, and rewrites
# the checked-in BENCH_served.json artefact (same settings as the
# committed run, ~5 s wall).  The hard timeout turns any event-loop
# deadlock — a reader waiting on a writer that will never flush — into
# a loud failure instead of a hung CI job.
cargo build --release --offline -q -p taco-bench --bin loadgen
if ! timeout 120 ./target/release/loadgen \
        --clients 8,64,256 --requests 200 --shards 1,3 \
        --json BENCH_served.json; then
    echo "loadgen smoke FAILED (non-zero exit or 120 s deadlock timeout)"
    exit 1
fi
echo "loadgen smoke ok: BENCH_served.json regenerated"

echo
echo "== tier-1 passed =="

# The proptests package needs the registry; probe with a cheap fetch and
# skip gracefully when the network is unavailable (the common case in
# hermetic CI containers).
if cargo fetch --manifest-path crates/proptests/Cargo.toml >/dev/null 2>&1; then
    echo
    echo "== registry reachable: proptest feature build + property tests =="
    cargo test -q --manifest-path crates/proptests/Cargo.toml --features proptest
    echo "== building Criterion benches (no run) =="
    cargo bench --manifest-path crates/proptests/Cargo.toml --no-run
else
    echo
    echo "== registry unreachable: skipping crates/proptests (expected offline) =="
fi
