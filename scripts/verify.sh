#!/usr/bin/env bash
# Tier-1 verification for the taco workspace.
#
# The main workspace has zero registry dependencies, so the tier-1 gate
# runs fully offline.  When the crates.io registry is reachable we
# additionally build/test the workspace-excluded crates/proptests package
# (proptest property suites + Criterion benches), which is the only place
# registry dependencies are allowed — see the dependency policy in
# README.md.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: format check =="
cargo fmt --check

echo
echo "== tier-1: clippy (warnings are errors) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo
echo "== tier-1: offline build + tests =="
cargo build --release --offline
cargo test -q --offline
cargo test -q --offline --workspace

echo
echo "== tier-1 passed =="

# The proptests package needs the registry; probe with a cheap fetch and
# skip gracefully when the network is unavailable (the common case in
# hermetic CI containers).
if cargo fetch --manifest-path crates/proptests/Cargo.toml >/dev/null 2>&1; then
    echo
    echo "== registry reachable: proptest feature build + property tests =="
    cargo test -q --manifest-path crates/proptests/Cargo.toml --features proptest
    echo "== building Criterion benches (no run) =="
    cargo bench --manifest-path crates/proptests/Cargo.toml --no-run
else
    echo
    echo "== registry unreachable: skipping crates/proptests (expected offline) =="
fi
